//! Profile-mining helpers over a WET — the "analysis of profiles to
//! identify program characteristics" the paper's introduction motivates:
//! hot paths (for path-sensitive optimization), value locality (for
//! value prediction and specialization), and isomorphic statements
//! (statements that always compute the same values, the paper's
//! citation \[21\]).

use crate::graph::{NodeId, Wet};
use crate::query::values::value_trace;
use std::collections::HashMap;
use wet_ir::{BlockId, FuncId, StmtId};

/// One hot path: a WET node and its execution count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPath {
    /// The node.
    pub node: NodeId,
    /// Containing function.
    pub func: FuncId,
    /// The path's block sequence.
    pub blocks: Vec<BlockId>,
    /// Executions.
    pub count: u64,
}

/// The `n` most frequently executed paths (Ball–Larus hot paths,
/// recovered directly from node execution counts — no traversal
/// needed).
pub fn hot_paths(wet: &Wet, n: usize) -> Vec<HotPath> {
    let mut v: Vec<HotPath> = wet
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, nd)| nd.n_execs > 0)
        .map(|(i, nd)| HotPath {
            node: NodeId(i as u32),
            func: nd.func,
            blocks: nd.blocks.clone(),
            count: nd.n_execs as u64,
        })
        .collect();
    v.sort_by_key(|h| std::cmp::Reverse(h.count));
    v.truncate(n);
    v
}

/// Value-locality statistics of one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueLocality {
    /// Dynamic executions.
    pub execs: u64,
    /// Distinct values produced.
    pub distinct: u64,
    /// Fraction of executions producing the most frequent value.
    pub top_share: f64,
    /// The most frequent value.
    pub top_value: i64,
    /// Fraction of executions repeating the immediately previous value
    /// (last-value predictability).
    pub last_value_rate: f64,
}

/// Computes value locality for a statement, or `None` if it has no
/// def port, never executed, or its value streams were lost to salvage
/// (use [`crate::query::value_trace_degraded`] to distinguish).
pub fn value_locality(wet: &mut Wet, stmt: StmtId) -> Option<ValueLocality> {
    let trace = value_trace(wet, stmt).ok()?;
    if trace.is_empty() {
        return None;
    }
    let mut freq: HashMap<i64, u64> = HashMap::new();
    let mut last_hits = 0u64;
    let mut prev = None;
    for &(_, v) in &trace {
        *freq.entry(v).or_default() += 1;
        if prev == Some(v) {
            last_hits += 1;
        }
        prev = Some(v);
    }
    let (&top_value, &top_n) = freq.iter().max_by_key(|(_, &n)| n)?;
    let n = trace.len() as u64;
    Some(ValueLocality {
        execs: n,
        distinct: freq.len() as u64,
        top_share: top_n as f64 / n as f64,
        top_value,
        last_value_rate: last_hits as f64 / n as f64,
    })
}

/// Finds groups of *isomorphic* statements: statements whose entire
/// dynamic value sequences are identical (cf. the paper's reference to
/// instruction isomorphism \[21\]). Returns groups of two or more
/// statements, largest first.
///
/// Statements with fewer than `min_execs` executions — or whose value
/// streams were lost to salvage — are ignored.
pub fn isomorphic_statements(wet: &mut Wet, stmts: &[StmtId], min_execs: usize) -> Vec<Vec<StmtId>> {
    let mut by_hash: HashMap<u64, Vec<(StmtId, Vec<i64>)>> = HashMap::new();
    for &s in stmts {
        let Ok(trace) = value_trace(wet, s) else { continue };
        let vals: Vec<i64> = trace.into_iter().map(|(_, v)| v).collect();
        if vals.len() < min_execs {
            continue;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for &v in &vals {
            h ^= v as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= vals.len() as u64;
        by_hash.entry(h).or_default().push((s, vals));
    }
    let mut groups = Vec::new();
    for (_, cands) in by_hash {
        // Verify exact equality within each hash bucket.
        let mut remaining = cands;
        while let Some((s0, v0)) = remaining.pop() {
            let (same, rest): (Vec<_>, Vec<_>) = remaining.into_iter().partition(|(_, v)| *v == v0);
            remaining = rest;
            if !same.is_empty() {
                let mut g: Vec<StmtId> = std::iter::once(s0).chain(same.into_iter().map(|(s, _)| s)).collect();
                g.sort();
                groups.push(g);
            }
        }
    }
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WetBuilder, WetConfig};
    use wet_interp::{Interp, InterpConfig};
    use wet_ir::ballarus::BallLarus;
    use wet_ir::builder::ProgramBuilder;
    use wet_ir::stmt::{BinOp, Operand};

    fn sample() -> (wet_ir::Program, Wet) {
        // Loop where two statements compute identical sequences
        // (x = i + i and y = i * 2) and one runs rarely.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let (e, h, b, r, x2) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
        let (i, c, x, y, z) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.block(e).movi(i, 0);
        f.block(e).jump(h);
        f.block(h).bin(BinOp::Lt, c, i, 30i64);
        f.block(h).branch(c, b, x2);
        f.block(b).bin(BinOp::Add, x, i, i);
        f.block(b).bin(BinOp::Mul, y, i, 2i64);
        f.block(b).bin(BinOp::Eq, c, i, 7i64);
        f.block(b).bin(BinOp::Add, i, i, 1i64);
        f.block(b).branch(c, r, h);
        f.block(r).bin(BinOp::Add, z, x, 1i64);
        f.block(r).jump(h);
        f.block(x2).out(Operand::Reg(x));
        f.block(x2).ret(None);
        let main = f.finish();
        let p = pb.finish(main).unwrap();
        let bl = BallLarus::new(&p);
        let mut builder = WetBuilder::new(&p, &bl, WetConfig::default());
        Interp::new(&p, &bl, InterpConfig::default()).run(&[], &mut builder).unwrap();
        let mut wet = builder.finish();
        wet.compress();
        (p, wet)
    }

    #[test]
    fn hot_paths_ranked_by_count() {
        let (_p, wet) = sample();
        let hot = hot_paths(&wet, 3);
        assert!(!hot.is_empty());
        for w in hot.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        // The loop body path dominates (~29 of ~31 paths).
        assert!(hot[0].count >= 20, "hot path count {}", hot[0].count);
    }

    #[test]
    fn value_locality_detects_increment() {
        let (p, mut wet) = sample();
        // Statement 0 is `i = 0` (constant); i's increment is inside
        // the loop. Check a def statement with all-distinct values.
        let add_x = wet_ir::StmtId(4); // x = i + i
        let loc = value_locality(&mut wet, add_x).expect("has values");
        assert_eq!(loc.execs, 30);
        assert_eq!(loc.distinct, 30, "x takes 30 distinct values");
        assert!(loc.last_value_rate < 0.05);
        // A never-executed or defless statement yields None.
        let store_like = p.function(p.main()).block(wet_ir::BlockId(0)).term().id;
        assert!(value_locality(&mut wet, store_like).is_none());
    }

    #[test]
    fn isomorphism_finds_equal_sequences() {
        let (p, mut wet) = sample();
        let all: Vec<StmtId> = (0..p.stmt_count() as u32).map(StmtId).collect();
        let groups = isomorphic_statements(&mut wet, &all, 5);
        // x = i + i and y = i * 2 are isomorphic.
        assert!(
            groups.iter().any(|g| g.contains(&StmtId(4)) && g.contains(&StmtId(5))),
            "expected {{s4, s5}} in {groups:?}"
        );
    }
}
