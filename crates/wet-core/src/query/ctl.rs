//! Request control for long-running queries: cooperative cancellation,
//! deadlines, and the typed errors a hardened caller can act on.
//!
//! Whole-trace queries walk structures proportional to the *execution*,
//! not the program, so a service answering them cannot hand a caller an
//! unbounded amount of CPU. Every query loop in [`crate::query`] checks
//! a [`Ctl`] at least once per [`CHECK_INTERVAL`] steps and bails out
//! with a typed [`QueryErr`] instead of running forever — which is what
//! lets `wet-serve` enforce per-request deadlines and cancel requests
//! whose clients have gone away without killing the process.
//!
//! Checks are **cooperative**: a query between two check points finishes
//! the work in hand (at most `CHECK_INTERVAL` steps, each O(1)) before
//! it notices. Preemptive cancellation would require either threads we
//! can kill (unsound in safe Rust: the query borrows the shared WET) or
//! a check on every step (measurable slowdown on the hot extraction
//! loops). The interval bounds the reaction latency to microseconds
//! while keeping the disabled-path cost to one branch per step batch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How many loop steps a query may take between two [`Ctl::check`]
/// calls. Cancel/deadline reaction latency is bounded by this many O(1)
/// steps.
pub const CHECK_INTERVAL: u32 = 1024;

/// Why a query did not return a complete answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryErr {
    /// The deadline attached to the request passed mid-query.
    DeadlineExceeded,
    /// The request's cancel token fired (client gone, shutdown, …).
    Cancelled,
    /// The server refused the request under overload; safe to retry
    /// after a backoff (the response carries the hint).
    Shed,
    /// The query walked into data the container does not have — a
    /// [`crate::Seq::Unavailable`] placeholder left by salvage, or an
    /// internally inconsistent stream. The degraded query variants can
    /// still answer from the surviving data.
    Corrupt(String),
}

impl std::fmt::Display for QueryErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryErr::DeadlineExceeded => write!(f, "deadline exceeded"),
            QueryErr::Cancelled => write!(f, "cancelled"),
            QueryErr::Shed => write!(f, "shed under overload"),
            QueryErr::Corrupt(what) => write!(f, "corrupt trace data: {what}"),
        }
    }
}

impl std::error::Error for QueryErr {}

impl QueryErr {
    /// Stable wire identifier for the error kind (the `wet-serve`
    /// protocol's `error.kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryErr::DeadlineExceeded => "deadline",
            QueryErr::Cancelled => "cancelled",
            QueryErr::Shed => "shed",
            QueryErr::Corrupt(_) => "corrupt",
        }
    }

    /// True when retrying the identical request later can succeed
    /// (shed and deadline pressure pass; corruption does not).
    pub fn is_retriable(&self) -> bool {
        matches!(self, QueryErr::Shed | QueryErr::DeadlineExceeded)
    }
}

/// A quality budget for a query: how many lazily-decoded section bytes
/// it may touch and (optionally) how long it may run before the engine
/// stops *refining* and answers with what it has.
///
/// Exhausting a budget is **not** an error. The budgeted entry points
/// report the uncovered remainder through the existing
/// [`crate::query::Degraded`] gap machinery — a partial answer with an
/// exact account of what is missing, never fabricated data. This is
/// the "first-class quality knob" generalization of the shed/degraded
/// failure path: `max_bytes` bounds work *deterministically* (coverage
/// is decided from decode-free stream lengths, in node order, before
/// any extraction), while `max_wall` is a soft wall-clock cutoff whose
/// coverage is inherently timing-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Decoded-byte allowance. `u64::MAX` means unlimited bytes (a
    /// wall-only budget).
    pub max_bytes: u64,
    /// Soft wall-clock allowance, measured from the moment the budget
    /// is attached to a [`Ctl`]. Unlike a deadline, expiry degrades
    /// instead of erroring.
    pub max_wall: Option<Duration>,
}

impl Budget {
    /// A pure byte budget (the deterministic form).
    pub fn bytes(max_bytes: u64) -> Budget {
        Budget { max_bytes, max_wall: None }
    }
}

/// Shared accounting behind a budgeted [`Ctl`]: every clone of the
/// token charges the same ledger, so a worker pool spends one budget.
#[derive(Debug)]
struct BudgetState {
    max_bytes: u64,
    /// `Instant` the wall allowance runs out, fixed when the budget is
    /// attached.
    soft_deadline: Option<Instant>,
    spent: AtomicU64,
}

/// Cap on buffered events per request trace: a hostile or pathological
/// query must not turn its own trace into an allocation amplifier.
/// Past the cap, events are counted (`ReqTrace::dropped`) and dropped.
pub const TRACE_EVENT_CAP: usize = 4096;

/// One event in a request-scoped trace: a counter note (`dur_us ==
/// None`) or a finished phase with a duration. `t_us` is microseconds
/// since the request trace was created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub t_us: u64,
    pub name: &'static str,
    pub n: u64,
    pub dur_us: Option<u64>,
}

/// A per-request event buffer threaded through [`Ctl`] into the engine
/// hot loops — the raw material for `wet-serve`'s slow-query log.
///
/// Granularity is deliberately coarse (one note per *node* or *phase*,
/// never per trace step), so a `Mutex<Vec>` per request is fine: the
/// lock is uncontended except when one query's worker pool reports
/// concurrently, and absent a trace the whole path is one branch.
#[derive(Debug)]
pub struct ReqTrace {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl Default for ReqTrace {
    fn default() -> Self {
        ReqTrace::new()
    }
}

impl ReqTrace {
    pub fn new() -> ReqTrace {
        ReqTrace { start: Instant::now(), events: Mutex::new(Vec::new()), dropped: AtomicU64::new(0) }
    }

    fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn push(&self, ev: TraceEvent) {
        let mut g = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        if g.len() < TRACE_EVENT_CAP {
            g.push(ev);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a counter-style event (`name = n`).
    pub fn note(&self, name: &'static str, n: u64) {
        self.push(TraceEvent { t_us: self.elapsed_us(), name, n, dur_us: None });
    }

    /// Open a timed phase; the duration is recorded when the guard
    /// drops.
    #[must_use = "the phase records its duration when the guard drops"]
    pub fn phase(self: &Arc<Self>, name: &'static str) -> PhaseGuard {
        PhaseGuard { trace: Some((Arc::clone(self), name, Instant::now())) }
    }

    /// Events recorded so far (in recording order) and how many were
    /// dropped past [`TRACE_EVENT_CAP`].
    pub fn events(&self) -> (Vec<TraceEvent>, u64) {
        let g = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        (g.clone(), self.dropped.load(Ordering::Relaxed))
    }
}

/// Guard for [`ReqTrace::phase`] / [`Ctl::phase`]; inert when the
/// control carries no trace.
pub struct PhaseGuard {
    trace: Option<(Arc<ReqTrace>, &'static str, Instant)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((trace, name, started)) = self.trace.take() {
            let dur_us = started.elapsed().as_micros() as u64;
            trace.push(TraceEvent { t_us: trace.elapsed_us(), name, n: 0, dur_us: Some(dur_us) });
        }
    }
}

/// A cancel token + optional deadline threaded through a query.
///
/// `Ctl::default()` is the unbounded control: no deadline, never
/// cancelled — the behavior of the pre-serve library API, used by all
/// the plain query entry points.
///
/// Cloning is cheap and shares the cancel flag (and the request trace,
/// when one is attached), so one token handed to a worker pool cancels
/// every worker and collects every worker's events.
#[derive(Debug, Clone, Default)]
pub struct Ctl {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    trace: Option<Arc<ReqTrace>>,
    budget: Option<Arc<BudgetState>>,
}

impl Ctl {
    /// The unbounded control: no deadline, never cancelled.
    pub fn unbounded() -> Ctl {
        Ctl::default()
    }

    /// A control that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Ctl {
        Ctl { deadline: Some(deadline), ..Ctl::default() }
    }

    /// A control carrying a shared cancel flag (and optionally a
    /// deadline). Setting the flag to `true` cancels every query
    /// holding a clone of this token at its next check point.
    pub fn with_cancel(cancel: Arc<AtomicBool>, deadline: Option<Instant>) -> Ctl {
        Ctl { cancel: Some(cancel), deadline, ..Ctl::default() }
    }

    /// Attach a quality [`Budget`]: the budgeted query entry points
    /// charge decoded bytes against it and stop refining (degrading,
    /// never erroring) once it is spent. The wall allowance starts
    /// counting now. Clones share the ledger.
    pub fn with_budget(mut self, budget: Budget) -> Ctl {
        self.budget = Some(Arc::new(BudgetState {
            max_bytes: budget.max_bytes,
            soft_deadline: budget.max_wall.map(|w| Instant::now() + w),
            spent: AtomicU64::new(0),
        }));
        self
    }

    /// True when a quality budget is attached.
    pub fn has_budget(&self) -> bool {
        self.budget.is_some()
    }

    /// Tries to charge `n` decoded bytes against the budget. Returns
    /// `true` when the charge fits (or no budget is attached — an
    /// unbudgeted control admits everything and accounts nothing).
    /// On `false` nothing is charged: the caller skips that unit of
    /// work and reports it as a gap.
    pub fn try_charge(&self, n: u64) -> bool {
        let Some(b) = &self.budget else { return true };
        let mut cur = b.spent.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(n);
            if next > b.max_bytes {
                return false;
            }
            match b.spent.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// True when the budget's soft wall-clock allowance has run out.
    /// Always `false` without a budget or without `max_wall`. Unlike
    /// [`check`](Ctl::check), this never produces an error — callers
    /// convert remaining work into reported gaps.
    pub fn wall_exhausted(&self) -> bool {
        self.budget
            .as_ref()
            .and_then(|b| b.soft_deadline)
            .is_some_and(|d| Instant::now() >= d)
    }

    /// Decoded bytes charged so far (0 without a budget). With a pure
    /// byte budget this is deterministic: coverage is planned before
    /// extraction, so the same budget always spends the same bytes.
    pub fn bytes_spent(&self) -> u64 {
        self.budget.as_ref().map_or(0, |b| b.spent.load(Ordering::Relaxed))
    }

    /// Attach a request-scoped trace: engine phases and notes recorded
    /// through this control (and its clones) land in `trace`.
    pub fn traced(mut self, trace: Arc<ReqTrace>) -> Ctl {
        self.trace = Some(trace);
        self
    }

    /// The attached request trace, if any.
    pub fn req_trace(&self) -> Option<&Arc<ReqTrace>> {
        self.trace.as_ref()
    }

    /// Record a counter-style event into the request trace. One branch
    /// when no trace is attached.
    #[inline]
    pub fn note(&self, name: &'static str, n: u64) {
        if let Some(t) = &self.trace {
            t.note(name, n);
        }
    }

    /// Open a timed phase in the request trace (inert guard when no
    /// trace is attached).
    #[inline]
    #[must_use = "the phase records its duration when the guard drops"]
    pub fn phase(&self, name: &'static str) -> PhaseGuard {
        match &self.trace {
            Some(t) => t.phase(name),
            None => PhaseGuard { trace: None },
        }
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when no check can ever fail — lets hot loops skip the
    /// periodic check entirely for the unbounded control.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// One cooperative check point: errors if the token was cancelled
    /// or the deadline has passed. Cost when unbounded: two branches.
    #[inline]
    pub fn check(&self) -> Result<(), QueryErr> {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return Err(QueryErr::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(QueryErr::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Periodic form for tight loops: performs a real [`check`]
    /// (which reads the clock) only every [`CHECK_INTERVAL`] calls.
    /// `i` is the loop counter; step 0 always checks, so even a loop
    /// shorter than the interval honors an already-expired control.
    #[inline]
    pub fn check_every(&self, i: usize) -> Result<(), QueryErr> {
        if (i as u32).is_multiple_of(CHECK_INTERVAL) && !self.is_unbounded() {
            self.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_never_fails() {
        let ctl = Ctl::unbounded();
        assert!(ctl.is_unbounded());
        for i in 0..10_000 {
            ctl.check_every(i).unwrap();
        }
        ctl.check().unwrap();
    }

    #[test]
    fn cancel_flag_fires_at_check_points() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctl = Ctl::with_cancel(flag.clone(), None);
        ctl.check().unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(ctl.check(), Err(QueryErr::Cancelled));
        // check_every honors the interval but always checks step 0.
        assert_eq!(ctl.check_every(0), Err(QueryErr::Cancelled));
        assert_eq!(ctl.check_every(1), Ok(()));
        assert_eq!(ctl.check_every(CHECK_INTERVAL as usize), Err(QueryErr::Cancelled));
    }

    #[test]
    fn deadline_in_the_past_fails_immediately() {
        let ctl = Ctl::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctl.check(), Err(QueryErr::DeadlineExceeded));
        let future = Ctl::with_deadline(Instant::now() + Duration::from_secs(3600));
        future.check().unwrap();
    }

    #[test]
    fn req_trace_records_notes_and_phases() {
        let trace = Arc::new(ReqTrace::new());
        let ctl = Ctl::unbounded().traced(Arc::clone(&trace));
        assert!(ctl.is_unbounded(), "a trace alone never makes checks fail");
        ctl.note("nodes", 7);
        {
            let _p = ctl.phase("extract");
            ctl.note("rows", 42);
        }
        let (events, dropped) = trace.events();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].name, events[0].n, events[0].dur_us), ("nodes", 7, None));
        assert_eq!((events[1].name, events[1].n), ("rows", 42));
        assert_eq!(events[2].name, "extract");
        assert!(events[2].dur_us.is_some(), "phase carries a duration");
        // Untraced controls are one-branch no-ops.
        let bare = Ctl::unbounded();
        bare.note("ignored", 1);
        let _p = bare.phase("ignored");
        assert!(bare.req_trace().is_none());
    }

    #[test]
    fn req_trace_caps_events() {
        let trace = Arc::new(ReqTrace::new());
        for i in 0..(TRACE_EVENT_CAP + 10) {
            trace.note("e", i as u64);
        }
        let (events, dropped) = trace.events();
        assert_eq!(events.len(), TRACE_EVENT_CAP);
        assert_eq!(dropped, 10);
    }

    #[test]
    fn budget_charges_are_shared_and_never_error() {
        let ctl = Ctl::unbounded().with_budget(Budget::bytes(100));
        assert!(ctl.has_budget());
        assert!(ctl.is_unbounded(), "a budget alone never makes checks fail");
        let clone = ctl.clone();
        assert!(ctl.try_charge(60));
        assert!(clone.try_charge(40), "clones share one ledger");
        assert!(!ctl.try_charge(1), "ledger is spent");
        assert_eq!(ctl.bytes_spent(), 100, "failed charges account nothing");
        ctl.check().unwrap();
        // Unbudgeted controls admit everything and account nothing.
        let bare = Ctl::unbounded();
        assert!(bare.try_charge(u64::MAX));
        assert_eq!(bare.bytes_spent(), 0);
        assert!(!bare.wall_exhausted());
    }

    #[test]
    fn wall_budget_expires_softly() {
        let ctl = Ctl::unbounded().with_budget(Budget {
            max_bytes: u64::MAX,
            max_wall: Some(Duration::from_millis(0)),
        });
        std::thread::sleep(Duration::from_millis(2));
        assert!(ctl.wall_exhausted());
        ctl.check().unwrap(); // soft: never an error
        assert!(ctl.try_charge(1 << 40), "wall-only budget never refuses bytes");
    }

    #[test]
    fn error_kinds_and_retriability() {
        assert_eq!(QueryErr::Shed.kind(), "shed");
        assert!(QueryErr::Shed.is_retriable());
        assert!(QueryErr::DeadlineExceeded.is_retriable());
        assert!(!QueryErr::Cancelled.is_retriable());
        assert!(!QueryErr::Corrupt("x".into()).is_retriable());
        assert_eq!(format!("{}", QueryErr::Corrupt("node 3 ts".into())), "corrupt trace data: node 3 ts");
    }
}
