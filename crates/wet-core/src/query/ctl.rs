//! Request control for long-running queries: cooperative cancellation,
//! deadlines, and the typed errors a hardened caller can act on.
//!
//! Whole-trace queries walk structures proportional to the *execution*,
//! not the program, so a service answering them cannot hand a caller an
//! unbounded amount of CPU. Every query loop in [`crate::query`] checks
//! a [`Ctl`] at least once per [`CHECK_INTERVAL`] steps and bails out
//! with a typed [`QueryErr`] instead of running forever — which is what
//! lets `wet-serve` enforce per-request deadlines and cancel requests
//! whose clients have gone away without killing the process.
//!
//! Checks are **cooperative**: a query between two check points finishes
//! the work in hand (at most `CHECK_INTERVAL` steps, each O(1)) before
//! it notices. Preemptive cancellation would require either threads we
//! can kill (unsound in safe Rust: the query borrows the shared WET) or
//! a check on every step (measurable slowdown on the hot extraction
//! loops). The interval bounds the reaction latency to microseconds
//! while keeping the disabled-path cost to one branch per step batch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How many loop steps a query may take between two [`Ctl::check`]
/// calls. Cancel/deadline reaction latency is bounded by this many O(1)
/// steps.
pub const CHECK_INTERVAL: u32 = 1024;

/// Why a query did not return a complete answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryErr {
    /// The deadline attached to the request passed mid-query.
    DeadlineExceeded,
    /// The request's cancel token fired (client gone, shutdown, …).
    Cancelled,
    /// The server refused the request under overload; safe to retry
    /// after a backoff (the response carries the hint).
    Shed,
    /// The query walked into data the container does not have — a
    /// [`crate::Seq::Unavailable`] placeholder left by salvage, or an
    /// internally inconsistent stream. The degraded query variants can
    /// still answer from the surviving data.
    Corrupt(String),
}

impl std::fmt::Display for QueryErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryErr::DeadlineExceeded => write!(f, "deadline exceeded"),
            QueryErr::Cancelled => write!(f, "cancelled"),
            QueryErr::Shed => write!(f, "shed under overload"),
            QueryErr::Corrupt(what) => write!(f, "corrupt trace data: {what}"),
        }
    }
}

impl std::error::Error for QueryErr {}

impl QueryErr {
    /// Stable wire identifier for the error kind (the `wet-serve`
    /// protocol's `error.kind` field).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryErr::DeadlineExceeded => "deadline",
            QueryErr::Cancelled => "cancelled",
            QueryErr::Shed => "shed",
            QueryErr::Corrupt(_) => "corrupt",
        }
    }

    /// True when retrying the identical request later can succeed
    /// (shed and deadline pressure pass; corruption does not).
    pub fn is_retriable(&self) -> bool {
        matches!(self, QueryErr::Shed | QueryErr::DeadlineExceeded)
    }
}

/// A cancel token + optional deadline threaded through a query.
///
/// `Ctl::default()` is the unbounded control: no deadline, never
/// cancelled — the behavior of the pre-serve library API, used by all
/// the plain query entry points.
///
/// Cloning is cheap and shares the cancel flag, so one token handed to
/// a worker pool cancels every worker.
#[derive(Debug, Clone, Default)]
pub struct Ctl {
    cancel: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl Ctl {
    /// The unbounded control: no deadline, never cancelled.
    pub fn unbounded() -> Ctl {
        Ctl::default()
    }

    /// A control that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Ctl {
        Ctl { cancel: None, deadline: Some(deadline) }
    }

    /// A control carrying a shared cancel flag (and optionally a
    /// deadline). Setting the flag to `true` cancels every query
    /// holding a clone of this token at its next check point.
    pub fn with_cancel(cancel: Arc<AtomicBool>, deadline: Option<Instant>) -> Ctl {
        Ctl { cancel: Some(cancel), deadline }
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True when no check can ever fail — lets hot loops skip the
    /// periodic check entirely for the unbounded control.
    #[inline]
    pub fn is_unbounded(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// One cooperative check point: errors if the token was cancelled
    /// or the deadline has passed. Cost when unbounded: two branches.
    #[inline]
    pub fn check(&self) -> Result<(), QueryErr> {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return Err(QueryErr::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(QueryErr::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Periodic form for tight loops: performs a real [`check`]
    /// (which reads the clock) only every [`CHECK_INTERVAL`] calls.
    /// `i` is the loop counter; step 0 always checks, so even a loop
    /// shorter than the interval honors an already-expired control.
    #[inline]
    pub fn check_every(&self, i: usize) -> Result<(), QueryErr> {
        if (i as u32).is_multiple_of(CHECK_INTERVAL) && !self.is_unbounded() {
            self.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unbounded_never_fails() {
        let ctl = Ctl::unbounded();
        assert!(ctl.is_unbounded());
        for i in 0..10_000 {
            ctl.check_every(i).unwrap();
        }
        ctl.check().unwrap();
    }

    #[test]
    fn cancel_flag_fires_at_check_points() {
        let flag = Arc::new(AtomicBool::new(false));
        let ctl = Ctl::with_cancel(flag.clone(), None);
        ctl.check().unwrap();
        flag.store(true, Ordering::Relaxed);
        assert_eq!(ctl.check(), Err(QueryErr::Cancelled));
        // check_every honors the interval but always checks step 0.
        assert_eq!(ctl.check_every(0), Err(QueryErr::Cancelled));
        assert_eq!(ctl.check_every(1), Ok(()));
        assert_eq!(ctl.check_every(CHECK_INTERVAL as usize), Err(QueryErr::Cancelled));
    }

    #[test]
    fn deadline_in_the_past_fails_immediately() {
        let ctl = Ctl::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(ctl.check(), Err(QueryErr::DeadlineExceeded));
        let future = Ctl::with_deadline(Instant::now() + Duration::from_secs(3600));
        future.check().unwrap();
    }

    #[test]
    fn error_kinds_and_retriability() {
        assert_eq!(QueryErr::Shed.kind(), "shed");
        assert!(QueryErr::Shed.is_retriable());
        assert!(QueryErr::DeadlineExceeded.is_retriable());
        assert!(!QueryErr::Cancelled.is_retriable());
        assert!(!QueryErr::Corrupt("x".into()).is_retriable());
        assert_eq!(format!("{}", QueryErr::Corrupt("node 3 ts".into())), "corrupt trace data: node 3 ts");
    }
}
