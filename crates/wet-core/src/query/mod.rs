//! Queries over the compressed WET (paper §2 "Queries" and §5.2).
//!
//! Each query works identically against the tier-1 and tier-2 forms of
//! a [`crate::Wet`]; the paper's Tables 6–9 compare their response
//! times.

pub mod addresses;
pub mod cftrace;
pub mod engine;
pub mod mine;
pub mod phases;
pub mod slice;
pub mod values;

pub use addresses::address_trace;
pub use mine::{hot_paths, isomorphic_statements, value_locality, HotPath, ValueLocality};
pub use phases::{cluster_phases, interval_vectors, IntervalVector, Phases};
pub use cftrace::{cf_trace_backward, cf_trace_forward, cf_trace_from, expand_blocks, locate_ts, trace_bytes, CfStep};
pub use slice::{backward_slice, forward_slice, SliceSpec, WetSlice, WetSliceElem};
pub use values::{value_trace, values_in_node};
