//! Queries over the compressed WET (paper §2 "Queries" and §5.2).
//!
//! Each query works identically against the tier-1 and tier-2 forms of
//! a [`crate::Wet`]; the paper's Tables 6–9 compare their response
//! times.

pub mod addresses;
pub mod cftrace;
pub mod ctl;
pub mod engine;
pub mod mine;
pub mod phases;
pub mod slice;
pub mod values;

pub use addresses::{address_trace, address_trace_ctl};
pub use ctl::{Budget, Ctl, PhaseGuard, QueryErr, ReqTrace, TraceEvent, CHECK_INTERVAL, TRACE_EVENT_CAP};
pub use engine::{address_trace_budgeted_ctl, value_trace_budgeted_ctl};
pub use mine::{hot_paths, isomorphic_statements, value_locality, HotPath, ValueLocality};
pub use phases::{cluster_phases, interval_vectors, IntervalVector, Phases};
pub use cftrace::{
    cf_trace_backward, cf_trace_backward_ctl, cf_trace_forward, cf_trace_forward_budgeted_ctl,
    cf_trace_forward_ctl, cf_trace_forward_degraded, cf_trace_forward_degraded_ctl, cf_trace_from,
    cf_trace_from_ctl, expand_blocks, locate_ts, trace_bytes, CfStep,
};
pub use slice::{
    backward_slice, backward_slice_ctl, backward_slice_degraded, backward_slice_degraded_ctl,
    forward_slice, forward_slice_ctl, SliceSpec, WetSlice, WetSliceElem,
};
pub use values::{
    value_trace, value_trace_ctl, value_trace_degraded, value_trace_degraded_ctl, values_in_node,
};

/// What a degraded query could *not* answer. After
/// [`crate::Wet::read_salvaging`] recovers a damaged container, label
/// sequences lost with their section are [`crate::Seq::Unavailable`];
/// the `*_degraded` query variants return every part of the answer the
/// surviving sequences support, plus this report of the holes. A
/// default (all-zero) report means the result is complete — on a
/// cleanly loaded WET the degraded variants agree exactly with their
/// strict counterparts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Degraded {
    /// Nodes whose contribution was dropped because a backing sequence
    /// (timestamps, pattern, unique values) was unavailable.
    pub nodes_skipped: u64,
    /// Contiguous timestamp ranges missing from a control-flow trace.
    pub gaps: u64,
    /// Node executions lost inside those gaps.
    pub steps_missing: u64,
    /// Unavailable sequences encountered while resolving dependences —
    /// each one is a producer edge the slice may be missing.
    pub seqs_unavailable: u64,
}

impl Degraded {
    /// True when nothing was lost: the result equals the strict query's.
    pub fn is_complete(&self) -> bool {
        *self == Degraded::default()
    }

    /// Accumulates another report (for queries composed of sub-queries).
    pub fn absorb(&mut self, other: &Degraded) {
        self.nodes_skipped += other.nodes_skipped;
        self.gaps += other.gaps;
        self.steps_missing += other.steps_missing;
        self.seqs_unavailable += other.seqs_unavailable;
    }
}
