//! WET slices (paper §2 and §5.2, Table 9).
//!
//! A backward WET slice of a statement instance is the subgraph of the
//! WET reachable backward over data and control dependence edges — the
//! complete profile history that led to the value. A forward slice
//! follows the edges the other way. Both traversals run directly on
//! the (tier-1 or tier-2) compressed representation.

use crate::graph::{NodeId, Wet, SLOT_CD, SLOT_MEM, SLOT_OP0, SLOT_OP1};
use crate::query::ctl::{Ctl, QueryErr};
use std::collections::{BTreeSet, HashSet};
use wet_ir::{Program, StmtId};

/// A dynamic statement instance addressed WET-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WetSliceElem {
    /// Containing node.
    pub node: NodeId,
    /// The statement.
    pub stmt: StmtId,
    /// Node execution index.
    pub k: u32,
}

/// Which dependence kinds a slice follows.
#[derive(Debug, Clone, Copy)]
pub struct SliceSpec {
    /// Follow data dependences.
    pub data: bool,
    /// Follow control dependences.
    pub control: bool,
}

impl Default for SliceSpec {
    fn default() -> Self {
        SliceSpec { data: true, control: true }
    }
}

/// A computed WET slice.
#[derive(Debug, Clone)]
pub struct WetSlice {
    /// Raw elements visited.
    pub elems: Vec<WetSliceElem>,
    /// The slice as `(stmt, ts)` pairs — the stable identity used to
    /// compare against reference slicers.
    pub stamped: BTreeSet<(StmtId, u64)>,
}

impl WetSlice {
    /// Number of dynamic instances in the slice.
    pub fn len(&self) -> usize {
        self.stamped.len()
    }

    /// True for an empty slice (never, for a valid criterion).
    pub fn is_empty(&self) -> bool {
        self.stamped.is_empty()
    }

    /// Distinct static statements in the slice.
    pub fn static_stmts(&self) -> BTreeSet<StmtId> {
        self.stamped.iter().map(|&(s, _)| s).collect()
    }
}

/// The CD anchor (block terminator) for a statement occurrence.
fn cd_anchor(wet: &Wet, program: &Program, node: NodeId, stmt: StmtId) -> Option<StmtId> {
    let n = wet.node(node);
    let pos = n.stmt_pos(stmt)?;
    let block = n.blocks[n.stmts[pos].block_idx as usize];
    Some(program.function(n.func).block(block).term().id)
}

/// Computes the backward WET slice from `criterion`. Returns
/// [`QueryErr::Corrupt`] when the traversal reaches a sequence lost to
/// salvage (use [`backward_slice_degraded`] for partial answers).
///
/// # Panics
/// Panics if the criterion statement is not part of the criterion node.
pub fn backward_slice(
    wet: &mut Wet,
    program: &Program,
    criterion: WetSliceElem,
    spec: SliceSpec,
) -> Result<WetSlice, QueryErr> {
    backward_slice_ctl(wet, program, criterion, spec, &Ctl::unbounded())
}

/// [`backward_slice`] with cooperative cancellation (one check per
/// visited instance).
pub fn backward_slice_ctl(
    wet: &mut Wet,
    program: &Program,
    criterion: WetSliceElem,
    spec: SliceSpec,
    ctl: &Ctl,
) -> Result<WetSlice, QueryErr> {
    let _span = wet_obs::span!("query.backward_slice");
    let _p = ctl.phase("engine.backward_slice");
    assert!(
        wet.node(criterion.node).stmt_pos(criterion.stmt).is_some(),
        "criterion statement not in node"
    );
    let mut visited: HashSet<WetSliceElem> = HashSet::new();
    let mut stamped = BTreeSet::new();
    let mut work = vec![criterion];
    while let Some(e) = work.pop() {
        if !visited.insert(e) {
            continue;
        }
        ctl.check_every(visited.len())?;
        if !wet.node(e.node).ts.is_available() {
            return Err(QueryErr::Corrupt(format!(
                "timestamp sequence unavailable in node {}",
                e.node.0
            )));
        }
        let ts = wet.node_mut(e.node).ts_at(e.k as usize);
        stamped.insert((e.stmt, ts));
        if spec.data {
            for slot in [SLOT_OP0, SLOT_OP1, SLOT_MEM] {
                if let Some((pn, ps, pk)) = wet.try_resolve_producer(e.node, e.stmt, slot, e.k)? {
                    work.push(WetSliceElem { node: pn, stmt: ps, k: pk });
                }
            }
        }
        if spec.control {
            if let Some(anchor) = cd_anchor(wet, program, e.node, e.stmt) {
                if let Some((pn, ps, pk)) = wet.try_resolve_producer(e.node, anchor, SLOT_CD, e.k)? {
                    work.push(WetSliceElem { node: pn, stmt: ps, k: pk });
                }
            }
        }
    }
    ctl.note("slice.elems", visited.len() as u64);
    Ok(WetSlice { elems: visited.into_iter().collect(), stamped })
}

/// Salvage-tolerant [`backward_slice`]: follows every dependence the
/// surviving sequences can resolve and reports what it could not
/// reach. Instances whose node timestamp stream was lost stay in the
/// traversal (their `k` is still exact) but cannot be stamped with a
/// timestamp, so they are absent from `stamped`; every unavailable
/// sequence consulted while resolving a producer is counted — each is
/// a dependence edge the slice may be missing. On a fully available
/// WET the result and report match the strict slice exactly.
pub fn backward_slice_degraded(
    wet: &mut Wet,
    program: &Program,
    criterion: WetSliceElem,
    spec: SliceSpec,
) -> (WetSlice, crate::query::Degraded) {
    backward_slice_degraded_ctl(wet, program, criterion, spec, &Ctl::unbounded())
        .expect("unbounded ctl never fails")
}

/// [`backward_slice_degraded`] with cooperative cancellation.
/// Corruption stays a *report*, never an error; only
/// cancellation/deadline aborts the traversal.
pub fn backward_slice_degraded_ctl(
    wet: &mut Wet,
    program: &Program,
    criterion: WetSliceElem,
    spec: SliceSpec,
    ctl: &Ctl,
) -> Result<(WetSlice, crate::query::Degraded), QueryErr> {
    let _span = wet_obs::span!("query.backward_slice_degraded");
    let mut deg = crate::query::Degraded::default();
    let mut visited: HashSet<WetSliceElem> = HashSet::new();
    let mut stamped = BTreeSet::new();
    if wet.node(criterion.node).stmt_pos(criterion.stmt).is_none() {
        return Ok((WetSlice { elems: Vec::new(), stamped }, deg));
    }
    let mut work = vec![criterion];
    while let Some(e) = work.pop() {
        if !visited.insert(e) {
            continue;
        }
        ctl.check_every(visited.len())?;
        if wet.node(e.node).ts.is_available() {
            let ts = wet.node_mut(e.node).ts_at(e.k as usize);
            stamped.insert((e.stmt, ts));
        } else {
            deg.seqs_unavailable += 1;
        }
        if spec.data {
            for slot in [SLOT_OP0, SLOT_OP1, SLOT_MEM] {
                if let Some((pn, ps, pk)) = resolve_producer_degraded(wet, &mut deg, e.node, e.stmt, slot, e.k) {
                    work.push(WetSliceElem { node: pn, stmt: ps, k: pk });
                }
            }
        }
        if spec.control {
            if let Some(anchor) = cd_anchor(wet, program, e.node, e.stmt) {
                if let Some((pn, ps, pk)) = resolve_producer_degraded(wet, &mut deg, e.node, anchor, SLOT_CD, e.k) {
                    work.push(WetSliceElem { node: pn, stmt: ps, k: pk });
                }
            }
        }
    }
    Ok((WetSlice { elems: visited.into_iter().collect(), stamped }, deg))
}

/// [`Wet::resolve_producer`] with the unavailable sequences on the
/// lookup path counted instead of silently treated as "no match", and
/// with the global-timestamp key guarded (the cursor path would panic
/// reading a lost stream).
fn resolve_producer_degraded(
    wet: &mut Wet,
    deg: &mut crate::query::Degraded,
    node: NodeId,
    dst_stmt: StmtId,
    slot: u8,
    k: u32,
) -> Option<(NodeId, StmtId, u32)> {
    if let Some(ies) = wet.node(node).intra.get(&(dst_stmt, slot)) {
        deg.seqs_unavailable +=
            ies.iter().filter(|ie| ie.ks.as_ref().is_some_and(|ks| !ks.is_available())).count() as u64;
    }
    for &ei in wet.in_edges(node, dst_stmt, slot) {
        let e = wet.edges()[ei as usize];
        if !wet.labels()[e.labels as usize].dst.is_available() {
            deg.seqs_unavailable += 1;
        }
    }
    if matches!(wet.config().ts_mode, crate::graph::TsMode::Global) && !wet.node(node).ts.is_available() {
        deg.seqs_unavailable += 1;
        return None;
    }
    wet.resolve_producer(node, dst_stmt, slot, k)
}

/// Computes the forward WET slice from `criterion`: every instance
/// whose computation (or execution) the criterion influenced. Returns
/// [`QueryErr::Corrupt`] when the traversal reaches a sequence lost to
/// salvage.
///
/// Forward traversal scans outgoing edge labels for the source
/// instance, and expands control dependences to every statement of the
/// dependent block, mirroring the dynamic CD semantics.
pub fn forward_slice(
    wet: &mut Wet,
    program: &Program,
    criterion: WetSliceElem,
    spec: SliceSpec,
) -> Result<WetSlice, QueryErr> {
    forward_slice_ctl(wet, program, criterion, spec, &Ctl::unbounded())
}

/// [`forward_slice`] with cooperative cancellation (one check per
/// visited instance, plus one per label-scan batch).
pub fn forward_slice_ctl(
    wet: &mut Wet,
    program: &Program,
    criterion: WetSliceElem,
    spec: SliceSpec,
    ctl: &Ctl,
) -> Result<WetSlice, QueryErr> {
    let _span = wet_obs::span!("query.forward_slice");
    let mut visited: HashSet<WetSliceElem> = HashSet::new();
    let mut stamped = BTreeSet::new();
    let mut work = vec![criterion];
    while let Some(e) = work.pop() {
        if !visited.insert(e) {
            continue;
        }
        ctl.check_every(visited.len())?;
        if !wet.node(e.node).ts.is_available() {
            return Err(QueryErr::Corrupt(format!(
                "timestamp sequence unavailable in node {}",
                e.node.0
            )));
        }
        let ts = wet.node_mut(e.node).ts_at(e.k as usize);
        stamped.insert((e.stmt, ts));

        // Intra-node consumers.
        let node = e.node;
        let intra_hits: Vec<(StmtId, u8)> = {
            let keys: Vec<(StmtId, u8)> = wet.node(node).intra.keys().copied().collect();
            let mut hits = Vec::new();
            for key in keys {
                let n = wet.node_mut(node);
                let Some(ies) = n.intra.get_mut(&key) else { continue };
                for ie in ies {
                    if ie.src != e.stmt {
                        continue;
                    }
                    if ie.ks.as_ref().is_some_and(|ks| !ks.is_available()) {
                        return Err(QueryErr::Corrupt(format!(
                            "intra-edge label sequence unavailable in node {}",
                            node.0
                        )));
                    }
                    let covered = if ie.complete {
                        true
                    } else {
                        ie.ks.as_mut().map(|ks| ks.find_sorted(e.k as u64).is_some()).unwrap_or(false)
                    };
                    if covered {
                        hits.push(key);
                    }
                }
            }
            hits
        };
        for (dst_stmt, slot) in intra_hits {
            push_consumers(wet, program, node, dst_stmt, slot, e.k, spec, &mut work);
        }

        // Non-local consumers: scan outgoing edges for the source key.
        let key = match wet.config().ts_mode {
            crate::graph::TsMode::Local => e.k as u64,
            crate::graph::TsMode::Global => ts,
        };
        let out: Vec<u32> = wet.out_edges(e.node, e.stmt).to_vec();
        for ei in out {
            let edge = wet.edges()[ei as usize];
            {
                let lab = &wet.labels()[edge.labels as usize];
                if !lab.dst.is_available() || !lab.src.is_available() {
                    return Err(QueryErr::Corrupt(format!("edge label pool {} unavailable", edge.labels)));
                }
            }
            let len = wet.labels()[edge.labels as usize].len as usize;
            for p in 0..len {
                ctl.check_every(p)?;
                let (dv, sv) = {
                    let lab = &mut wet.labels[edge.labels as usize];
                    (lab.dst.get(p), lab.src.get(p))
                };
                if sv != key {
                    continue;
                }
                let k_dst = match wet.config().ts_mode {
                    crate::graph::TsMode::Local => dv as u32,
                    crate::graph::TsMode::Global => {
                        if !wet.node(edge.dst_node).ts.is_available() {
                            return Err(QueryErr::Corrupt(format!(
                                "timestamp sequence unavailable in node {}",
                                edge.dst_node.0
                            )));
                        }
                        match wet.node_mut(edge.dst_node).ts.find_sorted(dv) {
                            Some(k) => k as u32,
                            None => continue,
                        }
                    }
                };
                push_consumers(wet, program, edge.dst_node, edge.dst_stmt, edge.slot, k_dst, spec, &mut work);
            }
        }
    }
    Ok(WetSlice { elems: visited.into_iter().collect(), stamped })
}

/// Pushes the consuming instances of a dependence hit onto the
/// worklist: the statement itself for data slots, or every statement of
/// the dependent block for control dependences.
#[allow(clippy::too_many_arguments)] // mirrors the dependence-edge tuple
fn push_consumers(
    wet: &Wet,
    program: &Program,
    node: NodeId,
    dst_stmt: StmtId,
    slot: u8,
    k: u32,
    spec: SliceSpec,
    work: &mut Vec<WetSliceElem>,
) {
    if slot == SLOT_CD {
        if !spec.control {
            return;
        }
        // dst_stmt anchors the block; all statements of that block at
        // execution k are control dependent.
        let loc = program.stmt_loc(dst_stmt);
        let n = wet.node(node);
        let bi = n.blocks.iter().position(|&b| b == loc.block).expect("anchor block in node");
        for ns in &n.stmts {
            if ns.block_idx as usize == bi {
                work.push(WetSliceElem { node, stmt: ns.id, k });
            }
        }
    } else {
        if !spec.data {
            return;
        }
        work.push(WetSliceElem { node, stmt: dst_stmt, k });
    }
}
