//! Program-phase analysis over a WET (SimPoint-style).
//!
//! The paper motivates multi-billion-statement WETs by citing
//! SimPoint-family results: "by appropriate selection of smaller
//! segment of a longer program run, program's execution can be
//! effectively characterized" \[17\]. This module provides that analysis
//! *on top of the compressed WET*: the execution is cut into
//! fixed-length intervals, each interval is summarized by its path
//! frequency vector (the path-level analogue of a basic-block vector),
//! and k-means clustering picks representative intervals — simulation
//! points.

use crate::graph::{NodeId, Wet};
use crate::query::cftrace::cf_trace_forward;
use std::collections::HashMap;

/// A sparse path-frequency vector for one interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalVector {
    /// `(node, count)` pairs, sorted by node.
    pub counts: Vec<(NodeId, u32)>,
    /// Total path executions in the interval (== interval length,
    /// except for the final partial interval).
    pub total: u32,
}

impl IntervalVector {
    /// Manhattan distance between two normalized frequency vectors.
    pub fn distance(&self, other: &IntervalVector) -> f64 {
        let mut d = 0.0;
        let (ta, tb) = (self.total.max(1) as f64, other.total.max(1) as f64);
        let mut i = 0;
        let mut j = 0;
        while i < self.counts.len() || j < other.counts.len() {
            match (self.counts.get(i), other.counts.get(j)) {
                (Some(&(na, ca)), Some(&(nb, cb))) => {
                    if na == nb {
                        d += (ca as f64 / ta - cb as f64 / tb).abs();
                        i += 1;
                        j += 1;
                    } else if na < nb {
                        d += ca as f64 / ta;
                        i += 1;
                    } else {
                        d += cb as f64 / tb;
                        j += 1;
                    }
                }
                (Some(&(_, ca)), None) => {
                    d += ca as f64 / ta;
                    i += 1;
                }
                (None, Some(&(_, cb))) => {
                    d += cb as f64 / tb;
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        d
    }
}

/// Splits the execution into intervals of `interval_len` path
/// executions and returns one frequency vector per interval, by walking
/// the (compressed) control-flow trace. A trailing partial interval is
/// dropped (as in SimPoint) unless it is the only one, so a tiny
/// tail cannot masquerade as a phase of its own.
pub fn interval_vectors(
    wet: &mut Wet,
    interval_len: usize,
) -> Result<Vec<IntervalVector>, crate::query::QueryErr> {
    assert!(interval_len > 0, "interval length must be positive");
    let steps = cf_trace_forward(wet)?;
    let full = steps.len() / interval_len * interval_len;
    let steps = if full > 0 { &steps[..full] } else { &steps[..] };
    let mut out = Vec::with_capacity(steps.len() / interval_len + 1);
    for chunk in steps.chunks(interval_len) {
        let mut freq: HashMap<NodeId, u32> = HashMap::new();
        for s in chunk {
            *freq.entry(s.node).or_default() += 1;
        }
        let mut counts: Vec<(NodeId, u32)> = freq.into_iter().collect();
        counts.sort_by_key(|&(n, _)| n);
        out.push(IntervalVector { counts, total: chunk.len() as u32 });
    }
    Ok(out)
}

/// The result of phase clustering.
#[derive(Debug, Clone)]
pub struct Phases {
    /// Cluster assignment per interval.
    pub assignment: Vec<usize>,
    /// Representative interval index per cluster (closest to centroid)
    /// — the simulation points.
    pub representatives: Vec<usize>,
    /// Cluster population sizes.
    pub sizes: Vec<usize>,
}

/// Clusters interval vectors into `k` phases with deterministic
/// k-means (k-means++-style farthest-point seeding, Manhattan
/// distance, fixed iteration cap).
pub fn cluster_phases(vectors: &[IntervalVector], k: usize) -> Phases {
    let n = vectors.len();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return Phases { assignment: Vec::new(), representatives: Vec::new(), sizes: Vec::new() };
    }
    // Farthest-point seeding from interval 0.
    let mut centers: Vec<usize> = vec![0];
    while centers.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| {
                let da = centers.iter().map(|&c| vectors[a].distance(&vectors[c])).fold(f64::MAX, f64::min);
                let db = centers.iter().map(|&c| vectors[b].distance(&vectors[c])).fold(f64::MAX, f64::min);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("n > 0");
        if centers.contains(&far) {
            break; // all remaining points coincide with centers
        }
        centers.push(far);
    }
    let k = centers.len();

    // Lloyd iterations with medoid-style centers (the member closest to
    // the cluster's mean distance), keeping everything deterministic.
    let mut assignment = vec![0usize; n];
    for _round in 0..12 {
        let mut changed = false;
        for i in 0..n {
            let best = (0..k)
                .min_by(|&a, &b| {
                    let da = vectors[i].distance(&vectors[centers[a]]);
                    let db = vectors[i].distance(&vectors[centers[b]]);
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute medoids.
        #[allow(clippy::needless_range_loop)] // c is the cluster id
        for c in 0..k {
            let members: Vec<usize> = (0..n).filter(|&i| assignment[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let medoid = *members
                .iter()
                .min_by(|&&a, &&b| {
                    let da: f64 = members.iter().map(|&m| vectors[a].distance(&vectors[m])).sum();
                    let db: f64 = members.iter().map(|&m| vectors[b].distance(&vectors[m])).sum();
                    da.partial_cmp(&db).expect("finite")
                })
                .expect("non-empty");
            centers[c] = medoid;
        }
        if !changed {
            break;
        }
    }
    let mut sizes = vec![0usize; k];
    for &a in &assignment {
        sizes[a] += 1;
    }
    Phases { assignment, representatives: centers, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WetBuilder, WetConfig};
    use wet_interp::{Interp, InterpConfig};
    use wet_ir::ballarus::BallLarus;
    use wet_ir::builder::ProgramBuilder;
    use wet_ir::stmt::{BinOp, Operand};

    /// Program with two clearly distinct phases: an arithmetic loop
    /// followed by a memory loop.
    fn two_phase_program() -> wet_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let (e, h1, b1, h2, b2, x) =
            (f.entry_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
        let (i, c, acc, a) = (f.reg(), f.reg(), f.reg(), f.reg());
        f.block(e).movi(i, 0);
        f.block(e).movi(acc, 0);
        f.block(e).jump(h1);
        f.block(h1).bin(BinOp::Lt, c, i, 300i64);
        f.block(h1).branch(c, b1, h2);
        f.block(b1).bin(BinOp::Add, acc, acc, i);
        f.block(b1).bin(BinOp::Add, i, i, 1i64);
        f.block(b1).jump(h1);
        f.block(h2).bin(BinOp::Lt, c, i, 600i64);
        f.block(h2).branch(c, b2, x);
        f.block(b2).bin(BinOp::And, a, i, 63i64);
        f.block(b2).store(a, i);
        f.block(b2).bin(BinOp::Add, i, i, 1i64);
        f.block(b2).jump(h2);
        f.block(x).out(Operand::Reg(acc));
        f.block(x).ret(None);
        let main = f.finish();
        pb.finish(main).unwrap()
    }

    fn build() -> Wet {
        let p = two_phase_program();
        let bl = BallLarus::new(&p);
        let mut builder = WetBuilder::new(&p, &bl, WetConfig::default());
        Interp::new(&p, &bl, InterpConfig::default()).run(&[], &mut builder).unwrap();
        let mut wet = builder.finish();
        wet.compress();
        wet
    }

    #[test]
    fn interval_vectors_cover_the_run() {
        let mut wet = build();
        let vecs = interval_vectors(&mut wet, 50).unwrap();
        let total: u32 = vecs.iter().map(|v| v.total).sum();
        // The trailing partial interval is dropped, so coverage is the
        // largest multiple of the interval length.
        let expected = wet.stats().paths_executed / 50 * 50;
        assert_eq!(total as u64, expected);
        for v in &vecs {
            let s: u32 = v.counts.iter().map(|&(_, c)| c).sum();
            assert_eq!(s, v.total);
            assert_eq!(v.total, 50);
        }
        // A single short run keeps its only (partial) interval.
        let vecs = interval_vectors(&mut wet, 1_000_000).unwrap();
        assert_eq!(vecs.len(), 1);
        assert_eq!(vecs[0].total as u64, wet.stats().paths_executed);
    }

    #[test]
    fn two_phases_are_separated() {
        let mut wet = build();
        let vecs = interval_vectors(&mut wet, 50).unwrap();
        let phases = cluster_phases(&vecs, 2);
        assert_eq!(phases.assignment.len(), vecs.len());
        // The first interval and the last interval must land in
        // different clusters (arithmetic phase vs memory phase).
        assert_ne!(
            phases.assignment[0],
            phases.assignment[vecs.len() - 2],
            "phases: {:?}",
            phases.assignment
        );
        // Representatives are valid interval indexes.
        for &r in &phases.representatives {
            assert!(r < vecs.len());
        }
        assert_eq!(phases.sizes.iter().sum::<usize>(), vecs.len());
    }

    #[test]
    fn distance_is_metric_like() {
        let a = IntervalVector { counts: vec![(NodeId(0), 10)], total: 10 };
        let b = IntervalVector { counts: vec![(NodeId(1), 10)], total: 10 };
        assert_eq!(a.distance(&a), 0.0);
        assert!((a.distance(&b) - 2.0).abs() < 1e-12, "disjoint normalized vectors have distance 2");
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn degenerate_inputs() {
        let phases = cluster_phases(&[], 3);
        assert!(phases.assignment.is_empty());
        let v = vec![IntervalVector { counts: vec![(NodeId(0), 5)], total: 5 }];
        let p1 = cluster_phases(&v, 5);
        assert_eq!(p1.assignment, vec![0]);
        assert_eq!(p1.representatives.len(), 1);
    }
}
