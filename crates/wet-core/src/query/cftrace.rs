//! Control-flow trace extraction (paper §2: "If a node is labeled with
//! `<t, −>`, the node that is executed next must be labeled with
//! `<t + 1, −>`").
//!
//! The trace is recovered by combining the unlabeled static CF edges
//! with the timestamp sequences: from the node execution at time `t`,
//! the successor is the unique CF-successor node whose timestamp stream
//! contains `t + 1`. Per-node stream cursors advance monotonically, so
//! a full extraction costs time linear in the trace in either
//! direction — the property Table 6 measures.
//!
//! Every extraction loop here is a cooperative cancel point (see
//! [`crate::query::ctl`]): the `*_ctl` entry points honor deadlines and
//! cancel tokens, and a timestamp no surviving sequence can account for
//! becomes a typed [`QueryErr::Corrupt`] instead of a panic.

use crate::graph::{NodeId, Wet};
use crate::query::ctl::{Ctl, QueryErr};
use wet_ir::{BlockId, FuncId};

/// One step of the node-level control-flow trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfStep {
    /// The executed node (path).
    pub node: NodeId,
    /// Its execution index.
    pub k: u32,
    /// The timestamp.
    pub ts: u64,
}

/// Extracts the full control-flow trace front to back.
pub fn cf_trace_forward(wet: &mut Wet) -> Result<Vec<CfStep>, QueryErr> {
    cf_trace_forward_ctl(wet, &Ctl::unbounded())
}

/// [`cf_trace_forward`] with cooperative cancellation: checks `ctl`
/// once per [`crate::query::CHECK_INTERVAL`] steps.
pub fn cf_trace_forward_ctl(wet: &mut Wet, ctl: &Ctl) -> Result<Vec<CfStep>, QueryErr> {
    let _span = wet_obs::span!("query.cf_trace_forward");
    let _p = ctl.phase("engine.cf_trace");
    let (first, first_ts) = wet.first();
    let (_, last_ts) = wet.last();
    let mut steps = Vec::with_capacity((last_ts - first_ts + 1) as usize);
    let mut node = first;
    let k0 = wet
        .node_mut(node)
        .ts
        .find_sorted(first_ts)
        .ok_or_else(|| QueryErr::Corrupt(format!("first node does not hold ts {first_ts}")))?;
    steps.push(CfStep { node, k: k0 as u32, ts: first_ts });
    let mut ts = first_ts;
    while ts < last_ts {
        ctl.check_every(steps.len())?;
        let next_ts = ts + 1;
        let succs: Vec<NodeId> = wet.node(node).cf_succs.clone();
        let mut found = None;
        for s in succs {
            // Range skip: a successor whose timestamp interval excludes
            // the target needs no stream probe at all.
            {
                let n = wet.node(s);
                if next_ts < n.ts_first || next_ts > n.ts_last {
                    continue;
                }
            }
            if let Some(k) = wet.node_mut(s).ts.find_sorted(next_ts) {
                found = Some((s, k));
                break;
            }
        }
        let (s, k) =
            found.ok_or_else(|| QueryErr::Corrupt(format!("no successor node holds ts {next_ts}")))?;
        steps.push(CfStep { node: s, k: k as u32, ts: next_ts });
        node = s;
        ts = next_ts;
    }
    ctl.note("cf.steps", steps.len() as u64);
    Ok(steps)
}

/// Extracts the full control-flow trace back to front. The returned
/// steps are in reverse execution order (last first).
pub fn cf_trace_backward(wet: &mut Wet) -> Result<Vec<CfStep>, QueryErr> {
    cf_trace_backward_ctl(wet, &Ctl::unbounded())
}

/// [`cf_trace_backward`] with cooperative cancellation.
pub fn cf_trace_backward_ctl(wet: &mut Wet, ctl: &Ctl) -> Result<Vec<CfStep>, QueryErr> {
    let _span = wet_obs::span!("query.cf_trace_backward");
    let (last, last_ts) = wet.last();
    let (_, first_ts) = wet.first();
    let mut steps = Vec::with_capacity((last_ts - first_ts + 1) as usize);
    let mut node = last;
    let k0 = wet
        .node_mut(node)
        .ts
        .find_sorted(last_ts)
        .ok_or_else(|| QueryErr::Corrupt(format!("last node does not hold ts {last_ts}")))?;
    steps.push(CfStep { node, k: k0 as u32, ts: last_ts });
    let mut ts = last_ts;
    while ts > first_ts {
        ctl.check_every(steps.len())?;
        let prev_ts = ts - 1;
        let preds: Vec<NodeId> = wet.node(node).cf_preds.clone();
        let mut found = None;
        for p in preds {
            {
                let n = wet.node(p);
                if prev_ts < n.ts_first || prev_ts > n.ts_last {
                    continue;
                }
            }
            if let Some(k) = wet.node_mut(p).ts.find_sorted(prev_ts) {
                found = Some((p, k));
                break;
            }
        }
        let (p, k) =
            found.ok_or_else(|| QueryErr::Corrupt(format!("no predecessor node holds ts {prev_ts}")))?;
        steps.push(CfStep { node: p, k: k as u32, ts: prev_ts });
        node = p;
        ts = prev_ts;
    }
    Ok(steps)
}

/// Salvage-tolerant forward control-flow trace: recovers every step
/// whose node timestamp stream survived, in execution order, and
/// reports the holes. Where [`cf_trace_forward`] returns
/// [`QueryErr::Corrupt`] if a timestamp cannot be located, this variant
/// resynchronizes past the missing range and counts it as a gap —
/// partial results instead of no results, which is the point of
/// salvage mode.
pub fn cf_trace_forward_degraded(wet: &Wet) -> (Vec<CfStep>, crate::query::Degraded) {
    cf_trace_forward_degraded_ctl(wet, &Ctl::unbounded())
        .expect("unbounded ctl never fails")
}

/// [`cf_trace_forward_degraded`] with cooperative cancellation.
pub fn cf_trace_forward_degraded_ctl(
    wet: &Wet,
    ctl: &Ctl,
) -> Result<(Vec<CfStep>, crate::query::Degraded), QueryErr> {
    let _span = wet_obs::span!("query.cf_trace_forward_degraded");
    let mut deg = crate::query::Degraded::default();
    let mut steps = Vec::new();
    for (i, n) in wet.nodes().iter().enumerate() {
        ctl.check_every(i)?;
        match n.ts.try_to_vec_snapshot() {
            Some(ts) => {
                for (k, &t) in ts.iter().enumerate() {
                    steps.push(CfStep { node: NodeId(i as u32), k: k as u32, ts: t });
                }
            }
            None => deg.nodes_skipped += 1,
        }
    }
    ctl.check()?;
    // Timestamps partition the execution across nodes, so sorting by
    // ts reproduces exactly the successor-chasing order of the strict
    // extraction — for the steps that survived.
    steps.sort_unstable_by_key(|s| s.ts);
    let (_, first_ts) = wet.first();
    let (_, last_ts) = wet.last();
    let mut expected = first_ts;
    for s in &steps {
        if s.ts > expected {
            deg.gaps += 1;
            deg.steps_missing += s.ts - expected;
        }
        expected = s.ts + 1;
    }
    if expected <= last_ts {
        deg.gaps += 1;
        deg.steps_missing += last_ts - expected + 1;
    }
    Ok((steps, deg))
}

/// Budgeted forward control-flow trace: covers nodes in index order
/// while the [`crate::query::Budget`] attached to `ctl` admits their
/// decoded timestamp bytes (8 per execution, decided from decode-free
/// stream lengths *before* any decompression), and reports everything
/// it could not afford through the same gap machinery salvage uses.
/// Exhaustion is never an error — the answer is partial, annotated,
/// and (for a pure byte budget) byte-deterministic: the coverage plan
/// is sequential in node order, so the same budget on the same trace
/// always yields the same steps and the same gaps. A soft wall budget
/// additionally stops coverage when time runs out; that cutoff is
/// timing-dependent by nature.
///
/// With no budget attached this is exactly
/// [`cf_trace_forward_degraded_ctl`].
pub fn cf_trace_forward_budgeted_ctl(
    wet: &Wet,
    ctl: &Ctl,
) -> Result<(Vec<CfStep>, crate::query::Degraded), QueryErr> {
    let _span = wet_obs::span!("query.cf_trace_forward_budgeted");
    let mut deg = crate::query::Degraded::default();
    let mut steps = Vec::new();
    for (i, n) in wet.nodes().iter().enumerate() {
        ctl.check_every(i)?;
        if n.n_execs == 0 {
            continue;
        }
        if ctl.wall_exhausted() || !ctl.try_charge(8 * n.ts.len() as u64) {
            deg.nodes_skipped += 1;
            continue;
        }
        match n.ts.try_to_vec_snapshot() {
            Some(ts) => {
                for (k, &t) in ts.iter().enumerate() {
                    steps.push(CfStep { node: NodeId(i as u32), k: k as u32, ts: t });
                }
            }
            None => deg.nodes_skipped += 1,
        }
    }
    ctl.check()?;
    steps.sort_unstable_by_key(|s| s.ts);
    let (_, first_ts) = wet.first();
    let (_, last_ts) = wet.last();
    let mut expected = first_ts;
    for s in &steps {
        if s.ts > expected {
            deg.gaps += 1;
            deg.steps_missing += s.ts - expected;
        }
        expected = s.ts + 1;
    }
    if expected <= last_ts {
        deg.gaps += 1;
        deg.steps_missing += last_ts - expected + 1;
    }
    ctl.note("cf.steps", steps.len() as u64);
    Ok((steps, deg))
}

/// Locates the node execution holding timestamp `ts` by checking node
/// timestamp ranges and probing candidates' streams.
pub fn locate_ts(wet: &mut Wet, ts: u64) -> Option<CfStep> {
    let candidates: Vec<NodeId> = wet
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.n_execs > 0 && n.ts_first <= ts && ts <= n.ts_last)
        .map(|(i, _)| NodeId(i as u32))
        .collect();
    for c in candidates {
        if let Some(k) = wet.node_mut(c).ts.find_sorted(ts) {
            return Some(CfStep { node: c, k: k as u32, ts });
        }
    }
    None
}

/// Extracts up to `count` trace steps starting *at any execution
/// point* (paper §5.2: "Such a request can be made with respect to any
/// point either along the execution flow (forward) or in the reverse
/// direction"). `forward` selects the direction; the step at `ts`
/// itself is included.
///
/// Returns an empty vector when `ts` is outside the execution.
pub fn cf_trace_from(wet: &mut Wet, ts: u64, count: usize, forward: bool) -> Result<Vec<CfStep>, QueryErr> {
    cf_trace_from_ctl(wet, ts, count, forward, &Ctl::unbounded())
}

/// [`cf_trace_from`] with cooperative cancellation.
pub fn cf_trace_from_ctl(
    wet: &mut Wet,
    ts: u64,
    count: usize,
    forward: bool,
    ctl: &Ctl,
) -> Result<Vec<CfStep>, QueryErr> {
    let Some(start) = locate_ts(wet, ts) else { return Ok(Vec::new()) };
    let (_, last_ts) = wet.last();
    let (_, first_ts) = wet.first();
    let mut steps = vec![start];
    let mut node = start.node;
    let mut t = ts;
    while steps.len() < count {
        ctl.check_every(steps.len())?;
        let (next_t, neighbours) = if forward {
            if t >= last_ts {
                break;
            }
            (t + 1, wet.node(node).cf_succs.clone())
        } else {
            if t <= first_ts {
                break;
            }
            (t - 1, wet.node(node).cf_preds.clone())
        };
        let mut found = None;
        for nb in neighbours {
            {
                let n = wet.node(nb);
                if next_t < n.ts_first || next_t > n.ts_last {
                    continue;
                }
            }
            if let Some(k) = wet.node_mut(nb).ts.find_sorted(next_t) {
                found = Some(CfStep { node: nb, k: k as u32, ts: next_t });
                break;
            }
        }
        let step = found.ok_or_else(|| QueryErr::Corrupt(format!("no neighbour holds ts {next_t}")))?;
        node = step.node;
        t = next_t;
        steps.push(step);
    }
    Ok(steps)
}

/// Expands a node-level trace into the basic-block trace.
pub fn expand_blocks(wet: &Wet, steps: &[CfStep]) -> Vec<(FuncId, BlockId)> {
    let mut out = Vec::new();
    for s in steps {
        let n = wet.node(s.node);
        out.extend(n.blocks.iter().map(|&b| (n.func, b)));
    }
    out
}

/// Size of the block-level trace in bytes (4 bytes per executed block,
/// the unit Table 6 reports trace sizes in).
pub fn trace_bytes(wet: &Wet, steps: &[CfStep]) -> u64 {
    steps.iter().map(|s| 4 * wet.node(s.node).blocks.len() as u64).sum()
}
