//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) implemented
//! in-repo — the integrity check of every `.wetz` v2 container section.
//!
//! The build environment is offline, so no `crc32fast`; a classic
//! 256-entry table computed at first use is plenty for the file sizes
//! involved (one pass per section at write and read time).

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    })
}

/// A streaming CRC-32 accumulator.
#[derive(Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(97) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 256];
        data.iter_mut().enumerate().for_each(|(i, b)| *b = (i * 7) as u8);
        let clean = crc32(&data);
        for i in [0usize, 100, 255] {
            for bit in [0u8, 3, 7] {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc32(&d), clean, "flip at {i}.{bit} undetected");
            }
        }
    }
}
