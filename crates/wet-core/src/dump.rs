//! Human-readable rendering of WET subgraphs — the view the paper's
//! Figure 1(b) draws: a statement's `<ts, val>` label sequence, its
//! incoming `DD` and `CD` edges with their timestamp-pair labels, and
//! the unlabeled `CF` edges of its node.

use crate::graph::{NodeId, TsMode, Wet, SLOT_CD, SLOT_MEM, SLOT_OP0, SLOT_OP1};
use std::fmt::Write as _;
use wet_ir::{Program, StmtId};

fn slot_name(slot: u8) -> &'static str {
    match slot {
        SLOT_OP0 => "DD(op0)",
        SLOT_OP1 => "DD(op1)",
        SLOT_MEM => "DD(mem)",
        SLOT_CD => "CD",
        _ => "??",
    }
}

/// Renders up to `max` elements of a label sequence as `<a, b>` pairs.
fn fmt_pairs(dst: &[u64], src: &[u64], max: usize) -> String {
    let mut s = String::from("[");
    for i in 0..dst.len().min(max) {
        let _ = write!(s, "<{},{}> ", dst[i], src[i]);
    }
    if dst.len() > max {
        let _ = write!(s, "... {} total", dst.len());
    }
    s.trim_end().to_string() + "]"
}

/// Renders one node: its blocks, timestamp labels, per-statement value
/// labels, intra/inter dependence edges, and CF neighbours.
pub fn dump_node(wet: &mut Wet, program: &Program, node: NodeId, max: usize) -> String {
    let mut out = String::new();
    let (func, path_id, blocks, n_execs) = {
        let n = wet.node(node);
        (n.func, n.path_id, n.blocks.clone(), n.n_execs)
    };
    let fname = program.function(func).name().to_string();
    let _ = writeln!(
        out,
        "node n{} = path {} of {fname} (blocks {:?}), {} executions",
        node.0,
        path_id,
        blocks.iter().map(|b| b.0).collect::<Vec<_>>(),
        n_execs
    );
    let ts = wet.node_mut(node).ts.to_vec();
    let shown: Vec<String> = ts.iter().take(max).map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "  ts: [{}{}]",
        shown.join(" "),
        if ts.len() > max { format!(" ... {} total", ts.len()) } else { String::new() }
    );

    let stmt_ids: Vec<StmtId> = wet.node(node).stmts.iter().map(|s| s.id).collect();
    for stmt in stmt_ids {
        out.push_str(&dump_stmt_in_node(wet, program, node, stmt, max));
    }
    let n = wet.node(node);
    let _ = writeln!(
        out,
        "  CF: preds {:?} succs {:?}",
        n.cf_preds.iter().map(|p| p.0).collect::<Vec<_>>(),
        n.cf_succs.iter().map(|p| p.0).collect::<Vec<_>>()
    );
    out
}

/// Renders one statement occurrence: value labels plus incoming edges.
pub fn dump_stmt_in_node(wet: &mut Wet, program: &Program, node: NodeId, stmt: StmtId, max: usize) -> String {
    let mut out = String::new();
    let Some(pos) = wet.node(node).stmt_pos(stmt) else {
        return out;
    };
    let ns = wet.node(node).stmts[pos];
    let _ = write!(out, "  {stmt}");
    if ns.has_def {
        let n_execs = wet.node(node).n_execs as usize;
        let vals: Vec<String> = (0..n_execs.min(max))
            .map(|k| {
                let n = wet.node_mut(node);
                let t = n.ts_at(k);
                let v = n.value_at(stmt, k).unwrap_or(0);
                format!("<{t},{v}>")
            })
            .collect();
        let _ = write!(
            out,
            ": [{}{}]",
            vals.join(" "),
            if n_execs > max { format!(" ... {n_execs} total") } else { String::new() }
        );
    }
    out.push('\n');

    // Intra edges of this statement (and its block's CD anchor).
    let block = {
        let n = wet.node(node);
        n.blocks[ns.block_idx as usize]
    };
    let func = wet.node(node).func;
    let anchor = program.function(func).block(block).term().id;
    for (dst, label) in [(stmt, "deps"), (anchor, "block CD")] {
        let keys: Vec<(StmtId, u8)> = wet
            .node(node)
            .intra
            .keys()
            .filter(|(d, slot)| *d == dst && ((*slot == SLOT_CD) == (label == "block CD")))
            .copied()
            .collect();
        for (d, slot) in keys {
            let n = wet.node_mut(node);
            let Some(ies) = n.intra.get_mut(&(d, slot)) else { continue };
            let descs: Vec<String> = ies
                .iter_mut()
                .map(|ie| {
                    if ie.complete {
                        format!("{} (intra, labels inferred)", ie.src)
                    } else {
                        let ks = ie.ks.as_mut().map(|k| k.to_vec()).unwrap_or_default();
                        let pairs = fmt_pairs(&ks, &ks, max);
                        format!("{} (intra, partial {pairs})", ie.src)
                    }
                })
                .collect();
            for d in descs {
                let _ = writeln!(out, "    {} <- {}", slot_name(slot), d);
            }
        }
        // Non-local incoming edges.
        for slot in [SLOT_OP0, SLOT_OP1, SLOT_MEM, SLOT_CD] {
            if (slot == SLOT_CD) != (label == "block CD") {
                continue;
            }
            let idxs: Vec<u32> = wet.in_edges(node, dst, slot).to_vec();
            for ei in idxs {
                let e = wet.edges()[ei as usize];
                let (dv, sv, len) = {
                    let lab = &mut wet.labels[e.labels as usize];
                    (lab.dst.to_vec(), lab.src.to_vec(), lab.len)
                };
                let mode = match wet.config().ts_mode {
                    TsMode::Local => "local",
                    TsMode::Global => "global",
                };
                let _ = writeln!(
                    out,
                    "    {} <- {} @ n{} {} {} ({} pairs, shared label #{})",
                    slot_name(slot),
                    e.src_stmt,
                    e.src_node.0,
                    fmt_pairs(&dv, &sv, max),
                    mode,
                    len,
                    e.labels
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WetBuilder, WetConfig};
    use wet_interp::{Interp, InterpConfig};
    use wet_ir::ballarus::BallLarus;
    use wet_ir::builder::ProgramBuilder;
    use wet_ir::stmt::{BinOp, Operand};

    #[test]
    fn dump_shows_labels_and_edges() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let (e, h, b, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
        let (i, c) = (f.reg(), f.reg());
        f.block(e).movi(i, 0);
        f.block(e).jump(h);
        f.block(h).bin(BinOp::Lt, c, i, 5i64);
        f.block(h).branch(c, b, x);
        f.block(b).bin(BinOp::Add, i, i, 1i64);
        f.block(b).jump(h);
        f.block(x).out(Operand::Reg(i));
        f.block(x).ret(None);
        let main = f.finish();
        let p = pb.finish(main).unwrap();
        let bl = BallLarus::new(&p);
        let mut builder = WetBuilder::new(&p, &bl, WetConfig::default());
        Interp::new(&p, &bl, InterpConfig::default()).run(&[], &mut builder).unwrap();
        let mut wet = builder.finish();
        wet.compress();

        let mut all = String::new();
        for i in 0..wet.nodes().len() {
            all.push_str(&dump_node(&mut wet, &p, NodeId(i as u32), 6));
        }
        assert!(all.contains("node n0"), "{all}");
        assert!(all.contains("ts:"), "{all}");
        assert!(all.contains("DD(op0) <-"), "{all}");
        assert!(all.contains("CD <-"), "{all}");
        assert!(all.contains("CF: preds"), "{all}");
        assert!(all.contains("inferred") || all.contains("pairs"), "{all}");
    }
}
