//! The Whole Execution Trace as a labeled graph (paper §2).
//!
//! Nodes correspond to Ball–Larus paths (§3.1); each node carries its
//! timestamp sequence and, through value groups (§3.2), the value
//! sequences of its def-port statements. Dependence edges (`DD` and
//! `CD`) carry timestamp-pair label sequences, pooled and shared
//! (§3.3); control-flow edges (`CF`) are unlabeled. All label sequences
//! are [`Seq`]s, so one `Wet` serves queries in tier-1 or tier-2 form.

use crate::seq::Seq;
use crate::sizes::{CompressStats, StreamClass, WetSizes, WetStats};
use std::collections::HashMap;
use wet_interp::NdetKind;
use wet_stream::StreamConfig;
use wet_ir::{BlockId, FuncId, StmtId};

/// Dense identifier of a WET node (one distinct executed path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dependence slot: first operand.
pub const SLOT_OP0: u8 = 0;
/// Dependence slot: second operand.
pub const SLOT_OP1: u8 = 1;
/// Dependence slot: memory (load ← reaching store).
pub const SLOT_MEM: u8 = 2;
/// Dependence slot: control dependence (block ← predicate/call).
pub const SLOT_CD: u8 = 3;

/// Whether dependence-edge labels use global or local timestamps.
///
/// The paper's §5: "instead of using global timestamps to identify
/// statement instances, we use local timestamps for each statement
/// because this approach yields greater levels of compression". Local
/// labels are node-execution indexes; global labels are the shared
/// time counter values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TsMode {
    /// Edge labels are `(ts_use, ts_def)` global timestamps.
    Global,
    /// Edge labels are `(k_use, k_def)` node-execution indexes (the
    /// default, matching the paper's implementation).
    #[default]
    Local,
}

/// Crash-safe segmented capture knobs ([`crate::capture`]).
///
/// Like `stream.num_threads`, these are execution knobs, not data: they
/// are never serialized into `.wetz` containers (sealed output must be
/// byte-identical regardless of how the capture was segmented), but
/// they *are* recorded in a capture directory's manifest so a resumed
/// capture replays the exact same flush/shed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureConfig {
    /// Soft memory budget for the in-progress trace, in bytes.
    /// `0` means unlimited. The capture flushes a segment once roughly
    /// half the budget is buffered, and starts shedding value-profile
    /// detail (sticky) when the unflushable carry-over state alone
    /// approaches the budget.
    pub budget_bytes: u64,
    /// Seal a segment at least every this many timestamps.
    pub segment_interval: u64,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig { budget_bytes: 0, segment_interval: 1 << 16 }
    }
}

/// Query-serving knobs ([`crate::query::engine`] and `wet-serve`).
///
/// Like `stream.num_threads`, these are execution knobs, not data:
/// they are never serialized into `.wetz` containers — two servers
/// with different budgets answer queries over byte-identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeConfig {
    /// Byte budget for each query worker's decompression cache
    /// ([`crate::query::engine::EngineCache`]). `0` means unlimited
    /// (the library default). When set, the cache evicts
    /// least-recently-used entries so accounted bytes never exceed the
    /// budget; streams larger than the whole budget are decompressed
    /// into a transient scratch slot and never cached.
    pub cache_budget_bytes: u64,
}

/// WET construction options.
#[derive(Debug, Clone)]
pub struct WetConfig {
    /// Edge label timestamp mode.
    pub ts_mode: TsMode,
    /// Tier-2 stream compression settings.
    pub stream: StreamConfig,
    /// Enable §3.2 value grouping (disable for ablation: every def
    /// statement becomes its own group).
    pub group_values: bool,
    /// Enable §3.3 local-edge label inference.
    pub infer_local_edges: bool,
    /// Enable §3.3 label-sequence sharing.
    pub share_edge_labels: bool,
    /// Segmented-capture policy (only consulted by [`crate::capture`];
    /// never serialized into `.wetz` files).
    pub capture: CaptureConfig,
    /// Query-serving policy (only consulted by the query engine and
    /// `wet-serve`; never serialized into `.wetz` files).
    pub serve: ServeConfig,
}

impl Default for WetConfig {
    fn default() -> Self {
        WetConfig {
            ts_mode: TsMode::Local,
            stream: StreamConfig::default(),
            group_values: true,
            infer_local_edges: true,
            share_edge_labels: true,
            capture: CaptureConfig::default(),
            serve: ServeConfig::default(),
        }
    }
}

/// One statement occurrence inside a node.
#[derive(Debug, Clone, Copy)]
pub struct NodeStmt {
    /// The statement.
    pub id: StmtId,
    /// Index into the node's block list.
    pub block_idx: u16,
    /// True if the statement has a def port (carries values).
    pub has_def: bool,
    /// Value group index (meaningful when `has_def`).
    pub group: u32,
    /// Member index within the group.
    pub member: u32,
}

/// A value group (§3.2): statements sharing one pattern.
#[derive(Debug, Clone)]
pub struct Group {
    /// Pattern sequence mapping execution index to unique-value index;
    /// `None` means the identity pattern (all tuples distinct).
    pub pattern: Option<Seq>,
    /// Unique-value sequences, one per member statement.
    pub uvals: Vec<Seq>,
    /// Number of unique value tuples.
    pub n_uvals: u32,
}

/// An intra-node dependence edge (src and use in the same node
/// execution). Labels are implied: every instance pairs execution `k`
/// with execution `k`.
#[derive(Debug, Clone)]
pub struct IntraEdge {
    /// Producing statement (same node).
    pub src: StmtId,
    /// True when the edge covers every execution of the node — its
    /// labels are then fully inferred and nothing is stored (§3.3).
    pub complete: bool,
    /// Execution indexes covered, when not complete.
    pub ks: Option<Seq>,
}

/// A WET node: one Ball–Larus path with its labels.
#[derive(Debug, Clone)]
pub struct Node {
    /// Containing function.
    pub func: FuncId,
    /// Ball–Larus path id within the function.
    pub path_id: u64,
    /// The path's block sequence.
    pub blocks: Vec<BlockId>,
    /// Statement occurrences in execution order.
    pub stmts: Vec<NodeStmt>,
    /// Executions of this node so far.
    pub n_execs: u32,
    /// Timestamp sequence (strictly increasing).
    pub ts: Seq,
    /// First timestamp (uncompressed metadata; enables range-skipping
    /// during control-flow traversal without touching the stream).
    pub ts_first: u64,
    /// Last timestamp.
    pub ts_last: u64,
    /// Value groups.
    pub groups: Vec<Group>,
    /// Observed control-flow successor nodes (unlabeled CF edges).
    pub cf_succs: Vec<NodeId>,
    /// Observed control-flow predecessor nodes.
    pub cf_preds: Vec<NodeId>,
    /// Intra-node dependence edges, keyed by `(use stmt, slot)`.
    pub intra: HashMap<(StmtId, u8), Vec<IntraEdge>>,
    pub(crate) stmt_pos: HashMap<StmtId, u32>,
}

impl Node {
    /// Position of a statement within the node, if present.
    pub fn stmt_pos(&self, s: StmtId) -> Option<usize> {
        self.stmt_pos.get(&s).map(|&i| i as usize)
    }

    /// The timestamp of execution `k`.
    ///
    /// # Panics
    /// Panics if `k >= n_execs`.
    pub fn ts_at(&mut self, k: usize) -> u64 {
        self.ts.get(k)
    }

    /// The value the statement produced at execution `k`, when it has a
    /// def port: `Values[k] = UVals[Pattern[k]]`. Returns `None` when
    /// the backing sequences were lost to salvage.
    pub fn value_at(&mut self, stmt: StmtId, k: usize) -> Option<i64> {
        let pos = self.stmt_pos(stmt)?;
        let ns = self.stmts[pos];
        if !ns.has_def {
            return None;
        }
        let g = &mut self.groups[ns.group as usize];
        let idx = match &mut g.pattern {
            None => k,
            Some(p) if p.is_available() => p.get(k) as usize,
            Some(_) => return None,
        };
        let u = &mut g.uvals[ns.member as usize];
        if !u.is_available() {
            return None;
        }
        Some(u.get(idx) as i64)
    }

    /// True when every sequence needed to answer value queries against
    /// this node survived (always true outside salvage).
    pub fn values_available(&self) -> bool {
        self.ts.is_available()
            && self.groups.iter().all(|g| {
                g.pattern.as_ref().map(Seq::is_available).unwrap_or(true)
                    && g.uvals.iter().all(Seq::is_available)
            })
    }
}

/// A non-local dependence edge between statement occurrences.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Producing node.
    pub src_node: NodeId,
    /// Producing statement.
    pub src_stmt: StmtId,
    /// Consuming node.
    pub dst_node: NodeId,
    /// Consuming statement (the block terminator for `SLOT_CD`).
    pub dst_stmt: StmtId,
    /// Dependence slot.
    pub slot: u8,
    /// Index of the (possibly shared) label sequence in the pool.
    pub labels: u32,
}

/// A pooled edge-label sequence: parallel `dst`/`src` streams of pairs.
#[derive(Debug, Clone)]
pub struct LabelSeq {
    /// Pair count.
    pub len: u32,
    /// Use-side labels (sorted ascending).
    pub dst: Seq,
    /// Def-side labels, parallel to `dst`.
    pub src: Seq,
}

/// One recorded nondeterministic value: the replay contract. The NDET
/// stream is the complete list of these in consumption order; feeding
/// them back through a replay source reproduces the run bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdetRec {
    /// Which nondeterministic source produced the value.
    pub kind: NdetKind,
    /// Global timestamp of the path execution that consumed it.
    pub ts: u64,
    /// The value delivered to the program.
    pub value: i64,
}

/// The Whole Execution Trace.
#[derive(Debug, Clone)]
pub struct Wet {
    pub(crate) config: WetConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) node_index: HashMap<(FuncId, u64), NodeId>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) labels: Vec<LabelSeq>,
    /// Incoming labeled edges per `(dst node, dst stmt, slot)`.
    pub(crate) in_edges: HashMap<(NodeId, StmtId, u8), Vec<u32>>,
    /// Outgoing labeled edges per `(src node, src stmt)`.
    pub(crate) out_edges: HashMap<(NodeId, StmtId), Vec<u32>>,
    /// First executed node and its timestamp (always ts 1).
    pub(crate) first: (NodeId, u64),
    /// Last executed node and its timestamp.
    pub(crate) last: (NodeId, u64),
    pub(crate) sizes: WetSizes,
    pub(crate) stats: WetStats,
    pub(crate) tier2: bool,
    /// The recorded NDET stream in consumption order. `Some(vec)` even
    /// when empty (the program had no nondeterministic reads);
    /// `None` only when a salvaging read lost the section — replay is
    /// then impossible and reports the stream as unavailable. Unlike
    /// value detail, NDET records are never shed under budget pressure:
    /// they are the replay contract.
    pub(crate) ndet: Option<Vec<NdetRec>>,
    /// Byte extents of the container sections this WET was loaded from
    /// (v2 reads only; `None` for built or v1-loaded WETs). Runtime
    /// provenance, never serialized: the lazy trace store and fsck
    /// tooling read it instead of re-walking the frame table.
    pub(crate) section_index: Option<Vec<crate::serial::SectionSpan>>,
}

impl Wet {
    /// The construction configuration.
    pub fn config(&self) -> &WetConfig {
        &self.config
    }

    /// Mutable access to the configuration — for the runtime-only knobs
    /// that are never serialized (worker threads, the serve cache
    /// budget), which a loader may want to adjust after `read_from`.
    pub fn config_mut(&mut self) -> &mut WetConfig {
        &mut self.config
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access (cursor movement).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Looks up the node for `(func, path_id)`.
    pub fn node_for_path(&self, func: FuncId, path_id: u64) -> Option<NodeId> {
        self.node_index.get(&(func, path_id)).copied()
    }

    /// All non-local edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The pooled label sequences.
    pub fn labels(&self) -> &[LabelSeq] {
        &self.labels
    }

    /// Labeled edges into `(node, stmt, slot)`.
    pub fn in_edges(&self, node: NodeId, stmt: StmtId, slot: u8) -> &[u32] {
        self.in_edges.get(&(node, stmt, slot)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Labeled edges out of `(node, stmt)` (any slot).
    pub fn out_edges(&self, node: NodeId, stmt: StmtId) -> &[u32] {
        self.out_edges.get(&(node, stmt)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The first executed node and its timestamp (1).
    pub fn first(&self) -> (NodeId, u64) {
        self.first
    }

    /// The last executed node and its timestamp.
    pub fn last(&self) -> (NodeId, u64) {
        self.last
    }

    /// Size accounting across tiers.
    pub fn sizes(&self) -> &WetSizes {
        &self.sizes
    }

    /// Construction statistics.
    pub fn stats(&self) -> &WetStats {
        &self.stats
    }

    /// True once [`compress`](Self::compress) has run.
    pub fn is_tier2(&self) -> bool {
        self.tier2
    }

    /// The recorded NDET stream in consumption order, or `None` when a
    /// salvaging read lost it (replay is then impossible).
    pub fn ndet(&self) -> Option<&[NdetRec]> {
        self.ndet.as_deref()
    }

    /// Section extents of the v2 container this WET was read from, if
    /// it came from one — the scan `read_from` already performed, so
    /// callers (the trace store, fsck tooling, the fault harness) never
    /// need to re-read the file to find section boundaries.
    pub fn section_index(&self) -> Option<&[crate::serial::SectionSpan]> {
        self.section_index.as_deref()
    }

    /// Applies tier-2 compression: every label sequence becomes a
    /// bidirectional compressed stream, and the `t2_*` size fields are
    /// filled in. Queries keep working through the same interface (at
    /// the tier-2 response times the paper's Tables 6–9 report).
    ///
    /// Streams compress independently on up to
    /// `config.stream.num_threads` workers ([`crate::par`]); because no
    /// compression state crosses streams and the accounting is a
    /// commutative [`CompressStats`] reduction, the result — payload
    /// bytes, sizes, stats, and any serialized `.wetz` — is
    /// byte-identical for every thread count.
    ///
    /// Re-entering after compression (e.g. on a deserialized tier-2
    /// WET) recomputes the accounting from the existing streams rather
    /// than re-accumulating it, so `compress` is idempotent.
    pub fn compress(&mut self) {
        let _span = wet_obs::span!("compress.tier2");
        if self.tier2 {
            let _span = wet_obs::span!("compress.tier2.recount");
            self.recount_tier2();
            return;
        }
        let cfg = self.config.stream.clone();
        let threads = crate::par::effective_threads(cfg.num_threads);
        let mut units = {
            let _span = wet_obs::span!("compress.tier2.node_streams");
            self.stream_units()
        };
        wet_obs::gauge_set("tier2.streams", "", units.len() as i64);
        let per_unit = crate::par::map_mut(threads, &mut units, |_, (class, seq)| {
            let raw_bytes = seq.len() as u64 * 8;
            seq.compress(&cfg);
            let mut cs = CompressStats::default();
            cs.note(*class, seq);
            wet_obs::counter_add("tier2.bytes_in", class.label(), raw_bytes);
            cs
        });
        let mut total = CompressStats::default();
        for cs in per_unit {
            total.merge(cs);
        }
        wet_obs::counter_add("tier2.bytes_out", StreamClass::Ts.label(), total.t2_ts);
        wet_obs::counter_add("tier2.bytes_out", StreamClass::Vals.label(), total.t2_vals);
        wet_obs::counter_add("tier2.bytes_out", StreamClass::Edges.label(), total.t2_edges);
        #[cfg(debug_assertions)]
        let reduced = total.clone();
        total.apply(&mut self.sizes, &mut self.stats);
        self.tier2 = true;
        // The sequential recount over the finished streams must agree
        // with the parallel per-stream reduction; stats drift between
        // the two accounting paths is caught here, not in benches.
        #[cfg(debug_assertions)]
        {
            let mut recount = CompressStats::default();
            for (class, seq) in self.stream_units() {
                recount.note(class, seq);
            }
            assert_eq!(
                recount, reduced,
                "recount_tier2 accounting disagrees with the parallel CompressStats reduction"
            );
        }
    }

    /// Every label sequence in the WET, tagged with its size class.
    /// One entry per independent tier-2 stream — the unit of parallel
    /// work in [`compress`](Self::compress).
    fn stream_units(&mut self) -> Vec<(StreamClass, &mut Seq)> {
        let mut units: Vec<(StreamClass, &mut Seq)> = Vec::new();
        for n in &mut self.nodes {
            units.push((StreamClass::Ts, &mut n.ts));
            for g in &mut n.groups {
                if let Some(p) = &mut g.pattern {
                    units.push((StreamClass::Vals, p));
                }
                for u in &mut g.uvals {
                    units.push((StreamClass::Vals, u));
                }
            }
            for ies in n.intra.values_mut() {
                for ie in ies {
                    if let Some(ks) = &mut ie.ks {
                        units.push((StreamClass::Edges, ks));
                    }
                }
            }
        }
        for l in &mut self.labels {
            units.push((StreamClass::Edges, &mut l.dst));
            units.push((StreamClass::Edges, &mut l.src));
        }
        units
    }

    /// Recomputes tier-2 sizes and method stats from the
    /// already-compressed streams (no compression work), replacing the
    /// stored accounting.
    fn recount_tier2(&mut self) {
        let mut total = CompressStats::default();
        for (class, seq) in self.stream_units() {
            total.note(class, seq);
        }
        total.apply(&mut self.sizes, &mut self.stats);
    }

    /// Checks integrity in two passes. The **structural** pass verifies
    /// sequence lengths against execution counts, edge/label/group
    /// references in range, and CF edge symmetry. The **stream** pass
    /// decodes every available sequence once through the checked
    /// (panic-free) traversal path and verifies the properties queries
    /// rely on: timestamp sequences strictly increasing and agreeing
    /// with the `ts_first`/`ts_last` metadata, `Pattern` indices `<
    /// n_uvals`, intra-edge coverage sets sorted and in execution
    /// range, label `dst` streams sorted, and — for tier-2 — every
    /// compressed stream's cursor and payload internally consistent
    /// (claimed length decodable from the stored bit stacks).
    ///
    /// Sequences marked [`Seq::Unavailable`] by salvage are length-
    /// checked only. Used after deserialization and in tests; a `Wet`
    /// that validates cannot make queries panic through out-of-range
    /// label indices or stream underflow.
    ///
    /// # Errors
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_structure()?;
        self.validate_streams()
    }

    fn validate_structure(&self) -> Result<(), String> {
        for (ni, n) in self.nodes.iter().enumerate() {
            if n.ts.len() != n.n_execs as usize {
                return Err(format!("node {ni}: ts length {} != n_execs {}", n.ts.len(), n.n_execs));
            }
            for (gi, g) in n.groups.iter().enumerate() {
                if let Some(p) = &g.pattern {
                    if p.len() != n.n_execs as usize {
                        return Err(format!("node {ni} group {gi}: pattern length mismatch"));
                    }
                }
                for (ui, u) in g.uvals.iter().enumerate() {
                    if u.len() != g.n_uvals as usize {
                        return Err(format!("node {ni} group {gi} member {ui}: uvals length mismatch"));
                    }
                }
            }
            for s in &n.stmts {
                if s.has_def {
                    let g = n.groups.get(s.group as usize).ok_or_else(|| {
                        format!("node {ni}: stmt {} references missing group {}", s.id, s.group)
                    })?;
                    if s.member as usize >= g.uvals.len() {
                        return Err(format!("node {ni}: stmt {} member out of range", s.id));
                    }
                }
                if s.block_idx as usize >= n.blocks.len() {
                    return Err(format!("node {ni}: stmt {} block index out of range", s.id));
                }
            }
            for &s in &n.cf_succs {
                if s.index() >= self.nodes.len() {
                    return Err(format!("node {ni}: CF successor out of range"));
                }
                if !self.nodes[s.index()].cf_preds.contains(&NodeId(ni as u32)) {
                    return Err(format!("node {ni}: CF edge to n{} not mirrored", s.0));
                }
            }
        }
        for (ei, e) in self.edges.iter().enumerate() {
            if e.src_node.index() >= self.nodes.len() || e.dst_node.index() >= self.nodes.len() {
                return Err(format!("edge {ei}: node reference out of range"));
            }
            let lab = self.labels.get(e.labels as usize).ok_or_else(|| format!("edge {ei}: missing label"))?;
            if lab.dst.len() != lab.len as usize || lab.src.len() != lab.len as usize {
                return Err(format!("edge {ei}: label length mismatch"));
            }
        }
        if self.first.0.index() >= self.nodes.len() || self.last.0.index() >= self.nodes.len() {
            return Err("first/last node out of range".to_string());
        }
        Ok(())
    }

    /// Decodes one sequence through the checked path, or reports why it
    /// cannot be decoded. `None` (skip) for unavailable sequences.
    fn decode_checked(seq: &Seq, what: &str) -> Result<Option<Vec<u64>>, String> {
        if !seq.is_available() {
            return Ok(None);
        }
        if let Seq::Compressed(s) = seq {
            let lo = -(s.method().window() as isize);
            if s.window_start() < lo || s.window_start() > s.len() as isize {
                return Err(format!("{what}: stream cursor out of range"));
            }
        }
        seq.try_to_vec_snapshot().map(Some).ok_or_else(|| format!("{what}: compressed stream payload inconsistent"))
    }

    fn validate_streams(&self) -> Result<(), String> {
        for (ni, n) in self.nodes.iter().enumerate() {
            if let Some(ts) = Self::decode_checked(&n.ts, &format!("node {ni} ts"))? {
                if !ts.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("node {ni}: timestamps not strictly increasing"));
                }
                if let (Some(&first), Some(&last)) = (ts.first(), ts.last()) {
                    if first != n.ts_first || last != n.ts_last {
                        return Err(format!("node {ni}: ts_first/ts_last disagree with ts stream"));
                    }
                }
            }
            for (gi, g) in n.groups.iter().enumerate() {
                if let Some(p) = &g.pattern {
                    if let Some(pv) = Self::decode_checked(p, &format!("node {ni} group {gi} pattern"))? {
                        if pv.iter().any(|&idx| idx >= g.n_uvals as u64) {
                            return Err(format!("node {ni} group {gi}: pattern index out of range"));
                        }
                    }
                }
                for (ui, u) in g.uvals.iter().enumerate() {
                    Self::decode_checked(u, &format!("node {ni} group {gi} member {ui} uvals"))?;
                }
            }
            for ((dst, slot), ies) in &n.intra {
                for ie in ies {
                    if let Some(ks) = &ie.ks {
                        let what = format!("node {ni} intra ({dst}, slot {slot})");
                        if let Some(kv) = Self::decode_checked(ks, &what)? {
                            if !kv.windows(2).all(|w| w[0] < w[1]) {
                                return Err(format!("{what}: coverage set not sorted"));
                            }
                            if kv.last().is_some_and(|&k| k >= n.n_execs as u64) {
                                return Err(format!("{what}: coverage index out of range"));
                            }
                        }
                    }
                }
            }
        }
        for (li, l) in self.labels.iter().enumerate() {
            if let Some(dst) = Self::decode_checked(&l.dst, &format!("label {li} dst"))? {
                if !dst.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("label {li}: dst labels not sorted"));
                }
            }
            Self::decode_checked(&l.src, &format!("label {li} src"))?;
        }
        Ok(())
    }

    /// Number of label sequences lost to salvage (zero for a cleanly
    /// loaded or freshly built WET).
    pub fn unavailable_seqs(&self) -> u64 {
        let mut n = 0u64;
        for node in &self.nodes {
            n += u64::from(!node.ts.is_available());
            for g in &node.groups {
                n += u64::from(g.pattern.as_ref().is_some_and(|p| !p.is_available()));
                n += g.uvals.iter().filter(|u| !u.is_available()).count() as u64;
            }
            for ies in node.intra.values() {
                n += ies.iter().filter(|ie| ie.ks.as_ref().is_some_and(|k| !k.is_available())).count() as u64;
            }
        }
        for l in &self.labels {
            n += u64::from(!l.dst.is_available()) + u64::from(!l.src.is_available());
        }
        n
    }

    /// Resolves the producer of dependence slot `slot` of `dst_stmt` at
    /// execution `k` of `node`: first by intra-node inference, then by
    /// searching the labeled incoming edges. Returns the producing
    /// `(node, stmt, execution)` triple.
    pub fn resolve_producer(
        &mut self,
        node: NodeId,
        dst_stmt: StmtId,
        slot: u8,
        k: u32,
    ) -> Option<(NodeId, StmtId, u32)> {
        // Intra-node edges: labels inferred (or stored per edge).
        {
            let n = &mut self.nodes[node.index()];
            if let Some(ies) = n.intra.get_mut(&(dst_stmt, slot)) {
                for ie in ies {
                    if ie.complete {
                        return Some((node, ie.src, k));
                    }
                    if let Some(ks) = &mut ie.ks {
                        if ks.find_sorted(k as u64).is_some() {
                            return Some((node, ie.src, k));
                        }
                    }
                }
            }
        }
        // Non-local labeled edges.
        let key = match self.config.ts_mode {
            TsMode::Local => k as u64,
            TsMode::Global => self.nodes[node.index()].ts.get(k as usize),
        };
        // Clone the (small) index list to release the map borrow.
        let edge_idxs = self.in_edges.get(&(node, dst_stmt, slot))?.clone();
        for ei in edge_idxs {
            let e = self.edges[ei as usize];
            let lab = &mut self.labels[e.labels as usize];
            if let Some(p) = lab.dst.find_sorted(key) {
                let srcv = lab.src.get(p);
                let k_src = match self.config.ts_mode {
                    TsMode::Local => srcv as u32,
                    TsMode::Global => {
                        let sn = &mut self.nodes[e.src_node.index()];
                        sn.ts.find_sorted(srcv)? as u32
                    }
                };
                return Some((e.src_node, e.src_stmt, k_src));
            }
        }
        None
    }

    /// [`Wet::resolve_producer`] for the strict query path over a
    /// possibly-salvaged container: every unavailable sequence on the
    /// lookup path surfaces as a typed
    /// [`crate::query::QueryErr::Corrupt`] instead of a panic (global
    /// timestamp keys) or a silent "no match" (intra `ks`, label
    /// pools). Same lookup order and outcomes on fully available data.
    pub fn try_resolve_producer(
        &mut self,
        node: NodeId,
        dst_stmt: StmtId,
        slot: u8,
        k: u32,
    ) -> Result<Option<(NodeId, StmtId, u32)>, crate::query::QueryErr> {
        use crate::query::QueryErr;
        {
            let n = &mut self.nodes[node.index()];
            if let Some(ies) = n.intra.get_mut(&(dst_stmt, slot)) {
                for ie in ies {
                    if ie.complete {
                        return Ok(Some((node, ie.src, k)));
                    }
                    if let Some(ks) = &mut ie.ks {
                        if !ks.is_available() {
                            return Err(QueryErr::Corrupt(format!(
                                "intra-edge label sequence unavailable in node {}",
                                node.0
                            )));
                        }
                        if ks.find_sorted(k as u64).is_some() {
                            return Ok(Some((node, ie.src, k)));
                        }
                    }
                }
            }
        }
        let key = match self.config.ts_mode {
            TsMode::Local => k as u64,
            TsMode::Global => {
                let ts = &mut self.nodes[node.index()].ts;
                if !ts.is_available() {
                    return Err(QueryErr::Corrupt(format!(
                        "timestamp sequence unavailable in node {}",
                        node.0
                    )));
                }
                ts.get(k as usize)
            }
        };
        let Some(edge_idxs) = self.in_edges.get(&(node, dst_stmt, slot)).cloned() else {
            return Ok(None);
        };
        for ei in edge_idxs {
            let e = self.edges[ei as usize];
            let lab = &mut self.labels[e.labels as usize];
            if !lab.dst.is_available() || !lab.src.is_available() {
                return Err(QueryErr::Corrupt(format!("edge label pool {} unavailable", e.labels)));
            }
            if let Some(p) = lab.dst.find_sorted(key) {
                let srcv = lab.src.get(p);
                let k_src = match self.config.ts_mode {
                    TsMode::Local => srcv as u32,
                    TsMode::Global => {
                        let sn = &mut self.nodes[e.src_node.index()];
                        if !sn.ts.is_available() {
                            return Err(QueryErr::Corrupt(format!(
                                "timestamp sequence unavailable in node {}",
                                e.src_node.0
                            )));
                        }
                        match sn.ts.find_sorted(srcv) {
                            Some(p) => p as u32,
                            None => return Ok(None),
                        }
                    }
                };
                return Ok(Some((e.src_node, e.src_stmt, k_src)));
            }
        }
        Ok(None)
    }
}
