//! Binary serialization of whole WETs — the `.wetz` file format.
//!
//! A serialized WET contains everything needed to resume queries:
//! the node/edge structure, all label sequences (tier-1 raw or tier-2
//! compressed, including stream cursor and predictor-table state), and
//! the size/statistics bookkeeping. Format: magic `WETZ`, version byte,
//! then length-prefixed little-endian sections with no external
//! dependencies.

use crate::graph::{Edge, Group, IntraEdge, LabelSeq, Node, NodeId, NodeStmt, TsMode, Wet, WetConfig};
use crate::seq::Seq;
use crate::sizes::{WetSizes, WetStats};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use wet_stream::serial::{r_u32, r_u64, r_u64s, r_u8, w_u32, w_u64, w_u64s, w_u8};
use wet_stream::{CompressedStream, Method, StreamConfig};
use wet_ir::{BlockId, FuncId, StmtId};

const MAGIC: &[u8; 4] = b"WETZ";
const VERSION: u8 = 1;

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn w_seq(w: &mut impl Write, s: &Seq) -> io::Result<()> {
    match s {
        Seq::Raw(v) => {
            w_u8(w, 0)?;
            w_u64s(w, v)
        }
        Seq::Compressed(c) => {
            w_u8(w, 1)?;
            c.write_to(w)
        }
    }
}

fn r_seq(r: &mut impl Read) -> io::Result<Seq> {
    Ok(match r_u8(r)? {
        0 => Seq::Raw(r_u64s(r)?),
        1 => Seq::Compressed(CompressedStream::read_from(r)?),
        _ => return Err(corrupt("bad seq tag")),
    })
}

fn w_opt_seq(w: &mut impl Write, s: &Option<Seq>) -> io::Result<()> {
    match s {
        None => w_u8(w, 0),
        Some(s) => {
            w_u8(w, 1)?;
            w_seq(w, s)
        }
    }
}

fn r_opt_seq(r: &mut impl Read) -> io::Result<Option<Seq>> {
    Ok(match r_u8(r)? {
        0 => None,
        1 => Some(r_seq(r)?),
        _ => return Err(corrupt("bad option tag")),
    })
}

fn w_method(w: &mut impl Write, m: Method) -> io::Result<()> {
    let (tag, arg) = match m {
        Method::Fcm { order } => (0u8, order),
        Method::Dfcm { order } => (1, order),
        Method::LastN { n } => (2, n),
        Method::LastNStride { n } => (3, n),
    };
    w_u8(w, tag)?;
    w_u32(w, arg)
}

fn r_method(r: &mut impl Read) -> io::Result<Method> {
    let tag = r_u8(r)?;
    let arg = r_u32(r)?;
    Ok(match tag {
        0 => Method::Fcm { order: arg },
        1 => Method::Dfcm { order: arg },
        2 => Method::LastN { n: arg },
        3 => Method::LastNStride { n: arg },
        _ => return Err(corrupt("bad method tag")),
    })
}

fn w_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn r_string(r: &mut impl Read) -> io::Result<String> {
    let n = r_u32(r)? as usize;
    if n > 1 << 20 {
        return Err(corrupt("string too long"));
    }
    let mut b = vec![0u8; n];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|_| corrupt("invalid utf-8"))
}

impl Wet {
    /// Serializes the WET to a writer.
    ///
    /// # Errors
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w_u8(w, VERSION)?;
        // Config.
        w_u8(w, matches!(self.config.ts_mode, TsMode::Global) as u8)?;
        w_u32(w, self.config.stream.table_bits_max)?;
        w_u64(w, self.config.stream.trial_len as u64)?;
        w_u32(w, self.config.stream.candidates.len() as u32)?;
        for &m in &self.config.stream.candidates {
            w_method(w, m)?;
        }
        w_u8(w, self.config.group_values as u8)?;
        w_u8(w, self.config.infer_local_edges as u8)?;
        w_u8(w, self.config.share_edge_labels as u8)?;
        w_u8(w, self.tier2 as u8)?;
        // Nodes.
        w_u64(w, self.nodes.len() as u64)?;
        for n in &self.nodes {
            w_u32(w, n.func.0)?;
            w_u64(w, n.path_id)?;
            w_u64s(w, &n.blocks.iter().map(|b| b.0 as u64).collect::<Vec<_>>())?;
            w_u64(w, n.stmts.len() as u64)?;
            for s in &n.stmts {
                w_u32(w, s.id.0)?;
                w_u32(w, s.block_idx as u32)?;
                w_u8(w, s.has_def as u8)?;
                w_u32(w, s.group)?;
                w_u32(w, s.member)?;
            }
            w_u32(w, n.n_execs)?;
            w_seq(w, &n.ts)?;
            w_u64(w, n.ts_first)?;
            w_u64(w, n.ts_last)?;
            w_u64(w, n.groups.len() as u64)?;
            for g in &n.groups {
                w_opt_seq(w, &g.pattern)?;
                w_u32(w, g.n_uvals)?;
                w_u64(w, g.uvals.len() as u64)?;
                for u in &g.uvals {
                    w_seq(w, u)?;
                }
            }
            w_u64s(w, &n.cf_succs.iter().map(|p| p.0 as u64).collect::<Vec<_>>())?;
            w_u64s(w, &n.cf_preds.iter().map(|p| p.0 as u64).collect::<Vec<_>>())?;
            // Intra edges, sorted for deterministic output.
            let mut keys: Vec<(StmtId, u8)> = n.intra.keys().copied().collect();
            keys.sort();
            w_u64(w, keys.len() as u64)?;
            for key in keys {
                w_u32(w, key.0 .0)?;
                w_u8(w, key.1)?;
                let ies = &n.intra[&key];
                w_u64(w, ies.len() as u64)?;
                for ie in ies {
                    w_u32(w, ie.src.0)?;
                    w_u8(w, ie.complete as u8)?;
                    w_opt_seq(w, &ie.ks)?;
                }
            }
        }
        // Edges and label pool.
        w_u64(w, self.edges.len() as u64)?;
        for e in &self.edges {
            w_u32(w, e.src_node.0)?;
            w_u32(w, e.src_stmt.0)?;
            w_u32(w, e.dst_node.0)?;
            w_u32(w, e.dst_stmt.0)?;
            w_u8(w, e.slot)?;
            w_u32(w, e.labels)?;
        }
        w_u64(w, self.labels.len() as u64)?;
        for l in &self.labels {
            w_u32(w, l.len)?;
            w_seq(w, &l.dst)?;
            w_seq(w, &l.src)?;
        }
        // First/last, sizes, stats.
        w_u32(w, self.first.0 .0)?;
        w_u64(w, self.first.1)?;
        w_u32(w, self.last.0 .0)?;
        w_u64(w, self.last.1)?;
        let s = &self.sizes;
        for v in [s.orig_ts, s.orig_vals, s.orig_edges, s.t1_ts, s.t1_vals, s.t1_edges, s.t2_ts, s.t2_vals, s.t2_edges]
        {
            w_u64(w, v)?;
        }
        let st = &self.stats;
        for v in [
            st.stmts_executed,
            st.paths_executed,
            st.blocks_executed,
            st.nodes,
            st.edges,
            st.inferred_edges,
            st.shared_label_seqs,
            st.dynamic_deps,
        ] {
            w_u64(w, v)?;
        }
        w_u64(w, st.methods.len() as u64)?;
        for (k, v) in &st.methods {
            w_string(w, k)?;
            w_u64(w, *v)?;
        }
        Ok(())
    }

    /// Deserializes a WET written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    /// Fails on bad magic, unsupported version, or malformed input.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("not a WETZ file"));
        }
        if r_u8(r)? != VERSION {
            return Err(corrupt("unsupported WETZ version"));
        }
        let ts_mode = if r_u8(r)? == 1 { TsMode::Global } else { TsMode::Local };
        let table_bits_max = r_u32(r)?;
        let trial_len = r_u64(r)? as usize;
        let n_cand = r_u32(r)? as usize;
        if n_cand > 1024 {
            return Err(corrupt("too many candidate methods"));
        }
        let mut candidates = Vec::with_capacity(n_cand);
        for _ in 0..n_cand {
            candidates.push(r_method(r)?);
        }
        let group_values = r_u8(r)? == 1;
        let infer_local_edges = r_u8(r)? == 1;
        let share_edge_labels = r_u8(r)? == 1;
        let tier2 = r_u8(r)? == 1;
        let config = WetConfig {
            ts_mode,
            // `num_threads` is an execution knob, not data: it is
            // deliberately not part of the format (files must be
            // byte-identical across thread counts), so reading resets
            // it to the default.
            stream: StreamConfig { table_bits_max, trial_len, candidates, ..Default::default() },
            group_values,
            infer_local_edges,
            share_edge_labels,
        };

        let n_nodes = r_u64(r)? as usize;
        if n_nodes > 1 << 28 {
            return Err(corrupt("node count too large"));
        }
        let mut nodes = Vec::with_capacity(n_nodes.min(1 << 16));
        let mut node_index = HashMap::new();
        for ni in 0..n_nodes {
            let func = FuncId(r_u32(r)?);
            let path_id = r_u64(r)?;
            let blocks: Vec<BlockId> = r_u64s(r)?.into_iter().map(|b| BlockId(b as u32)).collect();
            let n_stmts = r_u64(r)? as usize;
            if n_stmts > 1 << 24 {
                return Err(corrupt("statement count too large"));
            }
            let mut stmts = Vec::with_capacity(n_stmts);
            let mut stmt_pos = HashMap::new();
            for si in 0..n_stmts {
                let id = StmtId(r_u32(r)?);
                let block_idx = r_u32(r)? as u16;
                let has_def = r_u8(r)? == 1;
                let group = r_u32(r)?;
                let member = r_u32(r)?;
                stmt_pos.insert(id, si as u32);
                stmts.push(NodeStmt { id, block_idx, has_def, group, member });
            }
            let n_execs = r_u32(r)?;
            let ts = r_seq(r)?;
            let ts_first = r_u64(r)?;
            let ts_last = r_u64(r)?;
            let n_groups = r_u64(r)? as usize;
            if n_groups > n_stmts + 1 {
                return Err(corrupt("group count too large"));
            }
            let mut groups = Vec::with_capacity(n_groups);
            for _ in 0..n_groups {
                let pattern = r_opt_seq(r)?;
                let n_uvals = r_u32(r)?;
                let n_members = r_u64(r)? as usize;
                if n_members > n_stmts {
                    return Err(corrupt("member count too large"));
                }
                let mut uvals = Vec::with_capacity(n_members);
                for _ in 0..n_members {
                    uvals.push(r_seq(r)?);
                }
                groups.push(Group { pattern, uvals, n_uvals });
            }
            let cf_succs: Vec<NodeId> = r_u64s(r)?.into_iter().map(|p| NodeId(p as u32)).collect();
            let cf_preds: Vec<NodeId> = r_u64s(r)?.into_iter().map(|p| NodeId(p as u32)).collect();
            let n_intra = r_u64(r)? as usize;
            if n_intra > 1 << 24 {
                return Err(corrupt("intra count too large"));
            }
            let mut intra = HashMap::with_capacity(n_intra);
            for _ in 0..n_intra {
                let dst = StmtId(r_u32(r)?);
                let slot = r_u8(r)?;
                let n_ies = r_u64(r)? as usize;
                if n_ies > 1 << 20 {
                    return Err(corrupt("intra edge list too large"));
                }
                let mut ies = Vec::with_capacity(n_ies);
                for _ in 0..n_ies {
                    let src = StmtId(r_u32(r)?);
                    let complete = r_u8(r)? == 1;
                    let ks = r_opt_seq(r)?;
                    ies.push(IntraEdge { src, complete, ks });
                }
                intra.insert((dst, slot), ies);
            }
            node_index.insert((func, path_id), NodeId(ni as u32));
            nodes.push(Node {
                func,
                path_id,
                blocks,
                stmts,
                n_execs,
                ts,
                ts_first,
                ts_last,
                groups,
                cf_succs,
                cf_preds,
                intra,
                stmt_pos,
            });
        }

        let n_edges = r_u64(r)? as usize;
        if n_edges > 1 << 28 {
            return Err(corrupt("edge count too large"));
        }
        let mut edges = Vec::with_capacity(n_edges.min(1 << 16));
        for _ in 0..n_edges {
            edges.push(Edge {
                src_node: NodeId(r_u32(r)?),
                src_stmt: StmtId(r_u32(r)?),
                dst_node: NodeId(r_u32(r)?),
                dst_stmt: StmtId(r_u32(r)?),
                slot: r_u8(r)?,
                labels: r_u32(r)?,
            });
        }
        let n_labels = r_u64(r)? as usize;
        if n_labels > 1 << 28 {
            return Err(corrupt("label count too large"));
        }
        let mut labels = Vec::with_capacity(n_labels.min(1 << 16));
        for _ in 0..n_labels {
            let len = r_u32(r)?;
            let dst = r_seq(r)?;
            let src = r_seq(r)?;
            labels.push(LabelSeq { len, dst, src });
        }
        for e in &edges {
            if e.labels as usize >= labels.len()
                || e.src_node.index() >= nodes.len()
                || e.dst_node.index() >= nodes.len()
            {
                return Err(corrupt("edge references out of range"));
            }
        }
        let mut in_edges: HashMap<(NodeId, StmtId, u8), Vec<u32>> = HashMap::new();
        let mut out_edges: HashMap<(NodeId, StmtId), Vec<u32>> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            in_edges.entry((e.dst_node, e.dst_stmt, e.slot)).or_default().push(i as u32);
            out_edges.entry((e.src_node, e.src_stmt)).or_default().push(i as u32);
        }

        let first = (NodeId(r_u32(r)?), r_u64(r)?);
        let last = (NodeId(r_u32(r)?), r_u64(r)?);
        let mut sv = [0u64; 9];
        for v in &mut sv {
            *v = r_u64(r)?;
        }
        let sizes = WetSizes {
            orig_ts: sv[0],
            orig_vals: sv[1],
            orig_edges: sv[2],
            t1_ts: sv[3],
            t1_vals: sv[4],
            t1_edges: sv[5],
            t2_ts: sv[6],
            t2_vals: sv[7],
            t2_edges: sv[8],
        };
        let mut tv = [0u64; 8];
        for v in &mut tv {
            *v = r_u64(r)?;
        }
        let n_methods = r_u64(r)? as usize;
        if n_methods > 1 << 10 {
            return Err(corrupt("method histogram too large"));
        }
        let mut methods = std::collections::BTreeMap::new();
        for _ in 0..n_methods {
            let k = r_string(r)?;
            let v = r_u64(r)?;
            methods.insert(k, v);
        }
        let stats = WetStats {
            stmts_executed: tv[0],
            paths_executed: tv[1],
            blocks_executed: tv[2],
            nodes: tv[3],
            edges: tv[4],
            inferred_edges: tv[5],
            shared_label_seqs: tv[6],
            dynamic_deps: tv[7],
            methods,
        };

        let wet =
            Wet { config, nodes, node_index, edges, labels, in_edges, out_edges, first, last, sizes, stats, tier2 };
        wet.validate().map_err(|e| corrupt(&e))?;
        Ok(wet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use crate::WetBuilder;
    use wet_interp::{Interp, InterpConfig};
    use wet_ir::ballarus::BallLarus;

    fn sample_wet(tier2: bool) -> (wet_ir::Program, Wet) {
        let p = crate::tests::looping_program();
        let (mut wet, _) = crate::tests::build_wet(&p, &[70], WetConfig::default());
        if tier2 {
            wet.compress();
        }
        (p, wet)
    }

    #[test]
    fn roundtrip_preserves_queries_both_tiers() {
        for tier2 in [false, true] {
            let (p, mut wet) = sample_wet(tier2);
            let mut bytes = Vec::new();
            wet.write_to(&mut bytes).unwrap();
            let mut back = Wet::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back.is_tier2(), tier2);
            assert_eq!(back.nodes().len(), wet.nodes().len());
            assert_eq!(back.sizes(), wet.sizes());
            let a = query::cf_trace_forward(&mut wet);
            let b = query::cf_trace_forward(&mut back);
            assert_eq!(a, b, "tier2={tier2}");
            for sid in 0..p.stmt_count() as u32 {
                let s = StmtId(sid);
                assert_eq!(
                    query::value_trace(&wet, s),
                    query::value_trace(&back, s),
                    "values of {s} (tier2={tier2})"
                );
                assert_eq!(
                    query::address_trace(&wet, &p, s),
                    query::address_trace(&back, &p, s),
                    "addresses of {s} (tier2={tier2})"
                );
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOPE....".to_vec();
        assert!(Wet::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let (_p, wet) = sample_wet(true);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        for cut in [4, 16, bytes.len() / 3, bytes.len() - 1] {
            assert!(Wet::read_from(&mut &bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn file_roundtrip_through_disk() {
        let p = crate::tests::looping_program();
        let bl = BallLarus::new(&p);
        let mut builder = WetBuilder::new(&p, &bl, WetConfig::default());
        Interp::new(&p, &bl, InterpConfig::default()).run(&[40], &mut builder).unwrap();
        let mut wet = builder.finish();
        wet.compress();
        let dir = std::env::temp_dir().join("wet-serial-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wetz");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            wet.write_to(&mut f).unwrap();
        }
        let mut f = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        let mut back = Wet::read_from(&mut f).unwrap();
        assert_eq!(query::cf_trace_forward(&mut back).len() as u64, wet.stats().paths_executed);
    }
}
