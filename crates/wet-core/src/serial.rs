//! Binary serialization of whole WETs — the `.wetz` file format.
//!
//! # Container layout (version 2)
//!
//! ```text
//! "WETZ" | version u8 = 2
//! then, per section:  tag [u8;4] | len u64 LE | payload | crc32 u32 LE
//! CONF  compression/build configuration + tier flag
//! BIND  all *structure*: nodes, statements, group shapes, CF + value
//!       edges, intra-edge metadata, label-pool lengths, first/last
//! TSEQ  node timestamp sequences
//! VALS  value patterns + unique-value sequences
//! EDGL  intra-edge coverage sets and edge label streams
//! STAT  size/statistics bookkeeping
//! ENDW  trailer: number of preceding sections (u64)
//! ```
//!
//! Each CRC-32 (computed in-repo, [`crate::crc`]) covers tag, length
//! and payload, so a flipped bit anywhere — including an inflated
//! length prefix — is detected. Sections exist so damage can be
//! *contained*: structure lives entirely in `BIND`, label data is split
//! across three sections, and [`Wet::read_salvaging`] recovers every
//! section whose checksum verifies, replacing lost sequences with
//! [`Seq::Unavailable`] placeholders (lengths come from the intact
//! `BIND`, so validation and accounting still line up).
//!
//! The decoder is hardened against untrusted input: section payloads
//! are read in bounded chunks so allocation tracks bytes actually
//! present, every in-payload length prefix is checked against the
//! remaining input before any reservation, and the assembled WET must
//! pass [`Wet::validate`] — including checked (panic-free) decode of
//! every compressed stream — before it is returned.
//!
//! Version 1 files (no sections, no checksums) still load through a
//! compatibility path; [`Wet::write_to_v1`] keeps the old writer
//! available for tests and fixtures.

use crate::crc::Crc32;
use crate::fault::Io;
use crate::graph::{Edge, Group, IntraEdge, LabelSeq, NdetRec, Node, NodeId, NodeStmt, TsMode, Wet, WetConfig};
use crate::salvage::{FsckReport, SectionReport, SectionStatus};
use crate::seq::Seq;
use crate::sizes::{WetSizes, WetStats};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;
use wet_ir::{BlockId, FuncId, StmtId};
use wet_stream::serial::{r_u32, r_u64, r_u64s, r_u8, w_u32, w_u64, w_u64s, w_u8};
use wet_stream::{CompressedStream, Method, StreamConfig};

pub(crate) const MAGIC: &[u8; 4] = b"WETZ";
pub(crate) const V1: u8 = 1;
pub(crate) const V2: u8 = 2;

/// Configuration section tag.
pub const TAG_CONF: [u8; 4] = *b"CONF";
/// Structure (binding) section tag.
pub const TAG_BIND: [u8; 4] = *b"BIND";
/// Timestamp-sequence section tag.
pub const TAG_TSEQ: [u8; 4] = *b"TSEQ";
/// Value-sequence section tag.
pub const TAG_VALS: [u8; 4] = *b"VALS";
/// Edge-label section tag.
pub const TAG_EDGL: [u8; 4] = *b"EDGL";
/// Nondeterminism-record section tag (the replay contract).
pub const TAG_NDET: [u8; 4] = *b"NDET";
/// Statistics section tag.
pub const TAG_STAT: [u8; 4] = *b"STAT";
/// End-of-file trailer tag.
pub const TAG_ENDW: [u8; 4] = *b"ENDW";

/// Canonical section order (without the trailer).
pub(crate) const CANONICAL: [[u8; 4]; 7] =
    [TAG_CONF, TAG_BIND, TAG_TSEQ, TAG_VALS, TAG_EDGL, TAG_NDET, TAG_STAT];

/// Largest section any real WET produces, with margin. Length prefixes
/// beyond this are rejected before a single payload byte is read.
const MAX_SECTION: u64 = 1 << 34;

/// Payloads are read in chunks of this size, so a forged length prefix
/// can never make the decoder allocate more than the bytes actually in
/// the file (plus one chunk).
const CHUNK: usize = 64 * 1024;

pub(crate) fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Checks an element count read off the wire against the bytes left in
/// the section, given a lower bound on the encoded size of one element.
/// Every `Vec::with_capacity` in the parser goes through this, so no
/// allocation is attacker-controlled.
pub(crate) fn cap_count(n: usize, remaining: usize, min_bytes: usize, what: &str) -> io::Result<usize> {
    if n > remaining / min_bytes {
        return Err(corrupt(&format!("{what} count exceeds remaining input")));
    }
    Ok(n)
}

fn w_seq(w: &mut impl Write, s: &Seq) -> io::Result<()> {
    match s {
        Seq::Raw(v) => {
            w_u8(w, 0)?;
            w_u64s(w, v)
        }
        Seq::Compressed(c) => {
            w_u8(w, 1)?;
            c.write_to(w)
        }
        Seq::Unavailable(n) => {
            w_u8(w, 2)?;
            w_u64(w, *n)
        }
    }
}

fn r_seq(r: &mut impl Read) -> io::Result<Seq> {
    Ok(match r_u8(r)? {
        0 => Seq::Raw(r_u64s(r)?),
        1 => Seq::Compressed(CompressedStream::read_from(r)?),
        2 => Seq::Unavailable(r_u64(r)?),
        _ => return Err(corrupt("bad seq tag")),
    })
}

fn w_opt_seq(w: &mut impl Write, s: &Option<Seq>) -> io::Result<()> {
    match s {
        None => w_u8(w, 0),
        Some(s) => {
            w_u8(w, 1)?;
            w_seq(w, s)
        }
    }
}

fn r_opt_seq(r: &mut impl Read) -> io::Result<Option<Seq>> {
    Ok(match r_u8(r)? {
        0 => None,
        1 => Some(r_seq(r)?),
        _ => return Err(corrupt("bad option tag")),
    })
}

fn w_method(w: &mut impl Write, m: Method) -> io::Result<()> {
    let (tag, arg) = match m {
        Method::Fcm { order } => (0u8, order),
        Method::Dfcm { order } => (1, order),
        Method::LastN { n } => (2, n),
        Method::LastNStride { n } => (3, n),
    };
    w_u8(w, tag)?;
    w_u32(w, arg)
}

fn r_method(r: &mut impl Read) -> io::Result<Method> {
    let tag = r_u8(r)?;
    let arg = r_u32(r)?;
    Method::checked(tag, arg).map_err(corrupt)
}

fn w_string(w: &mut impl Write, s: &str) -> io::Result<()> {
    w_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn r_string(r: &mut impl Read) -> io::Result<String> {
    let n = r_u32(r)? as usize;
    if n > 1 << 20 {
        return Err(corrupt("string too long"));
    }
    let mut b = vec![0u8; n];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|_| corrupt("invalid utf-8"))
}

// ---------------------------------------------------------------------
// Section framing.
// ---------------------------------------------------------------------

pub(crate) fn w_section(w: &mut impl Write, tag: [u8; 4], payload: &[u8]) -> io::Result<()> {
    let len = (payload.len() as u64).to_le_bytes();
    let mut c = Crc32::new();
    c.update(&tag);
    c.update(&len);
    c.update(payload);
    w.write_all(&tag)?;
    w.write_all(&len)?;
    w.write_all(payload)?;
    w_u32(w, c.finish())
}

/// Reads until `buf` is full or the source is exhausted; returns the
/// number of bytes obtained (a short count means EOF, not an error).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut n = 0;
    while n < buf.len() {
        match r.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => n += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(n)
}

pub(crate) struct ScanEntry {
    pub(crate) tag: [u8; 4],
    pub(crate) len: u64,
    pub(crate) status: SectionStatus,
    /// File offset of the tag's first byte (the container header's 5
    /// bytes included), recorded so one scan yields both payloads and
    /// [`SectionSpan`]s — the store and `fsck` share this walk.
    pub(crate) start: u64,
}

pub(crate) struct Scan {
    pub(crate) entries: Vec<ScanEntry>,
    /// CRC-verified payloads, first occurrence per tag.
    pub(crate) payloads: HashMap<[u8; 4], Vec<u8>>,
    /// Section count from a verified `ENDW` trailer.
    pub(crate) trailer: Option<u64>,
    pub(crate) saw_trailer: bool,
    pub(crate) trailing_garbage: bool,
}

impl Scan {
    /// True when every section verified, the trailer is present and
    /// agrees with the section count, and nothing follows it — the
    /// "this file was completely and durably written" test the capture
    /// segment log applies to each sealed segment.
    pub(crate) fn is_intact(&self) -> bool {
        self.saw_trailer
            && !self.trailing_garbage
            && self.entries.iter().all(|e| e.status.is_ok())
            && self.trailer == Some(self.entries.len() as u64 - 1)
    }

    /// Byte extents of every fully-framed section (damaged payloads
    /// included — a CRC failure still has known extents; truncation and
    /// malformed length prefixes do not).
    pub(crate) fn spans(&self) -> Vec<SectionSpan> {
        self.entries
            .iter()
            .filter(|e| matches!(e.status, SectionStatus::Ok | SectionStatus::BadCrc))
            .map(|e| SectionSpan {
                tag: e.tag,
                start: e.start as usize,
                len_start: e.start as usize + 4,
                payload_start: e.start as usize + 12,
                payload_len: e.len as usize,
                end: e.start as usize + 12 + e.len as usize + 4,
            })
            .collect()
    }
}

/// Walks the section stream after the version byte. Never allocates
/// more than the input actually provides: payloads are read in
/// [`CHUNK`]-sized steps and implausible length prefixes stop the scan
/// before any payload read. I/O errors other than EOF propagate; damage
/// is recorded per section instead of failing the scan.
pub(crate) fn scan_sections(r: &mut impl Read) -> io::Result<Scan> {
    let mut scan = Scan {
        entries: Vec::new(),
        payloads: HashMap::new(),
        trailer: None,
        saw_trailer: false,
        trailing_garbage: false,
    };
    // The reader sits just past the 5-byte container header.
    let mut at = 5u64;
    loop {
        let start = at;
        let mut tag = [0u8; 4];
        let got = read_full(r, &mut tag)?;
        if got == 0 {
            break; // Clean EOF between sections (trailer missing is judged later).
        }
        if got < 4 {
            scan.entries.push(ScanEntry { tag: *b"????", len: 0, status: SectionStatus::Truncated, start });
            break;
        }
        let mut lenb = [0u8; 8];
        if read_full(r, &mut lenb)? < 8 {
            scan.entries.push(ScanEntry { tag, len: 0, status: SectionStatus::Truncated, start });
            break;
        }
        let len = u64::from_le_bytes(lenb);
        if len > MAX_SECTION {
            scan.entries.push(ScanEntry {
                tag,
                len,
                status: SectionStatus::Malformed("length prefix implausibly large".into()),
                start,
            });
            break;
        }
        let mut payload = Vec::with_capacity((len as usize).min(CHUNK));
        let mut short = false;
        while (payload.len() as u64) < len {
            let take = ((len - payload.len() as u64) as usize).min(CHUNK);
            let old = payload.len();
            payload.resize(old + take, 0);
            let got = read_full(r, &mut payload[old..])?;
            if got < take {
                payload.truncate(old + got);
                short = true;
                break;
            }
        }
        if short {
            scan.entries.push(ScanEntry { tag, len, status: SectionStatus::Truncated, start });
            break;
        }
        let mut crcb = [0u8; 4];
        if read_full(r, &mut crcb)? < 4 {
            scan.entries.push(ScanEntry { tag, len, status: SectionStatus::Truncated, start });
            break;
        }
        at = start + 12 + len + 4;
        let mut c = Crc32::new();
        c.update(&tag);
        c.update(&lenb);
        c.update(&payload);
        let crc_ok = c.finish() == u32::from_le_bytes(crcb);
        let status = if crc_ok { SectionStatus::Ok } else { SectionStatus::BadCrc };
        if tag == TAG_ENDW {
            scan.saw_trailer = true;
            if crc_ok && payload.len() == 8 {
                scan.trailer = Some(u64::from_le_bytes(payload[..8].try_into().unwrap()));
            }
            scan.entries.push(ScanEntry { tag, len, status, start });
            let mut one = [0u8; 1];
            if read_full(r, &mut one)? > 0 {
                scan.trailing_garbage = true;
            }
            break;
        }
        if crc_ok {
            scan.payloads.entry(tag).or_insert(payload);
        }
        scan.entries.push(ScanEntry { tag, len, status, start });
    }
    Ok(scan)
}

/// Byte extents of one section inside a v2 container image — the handle
/// the fault-injection harness uses to aim mutations at boundaries,
/// length prefixes and payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionSpan {
    /// Section tag.
    pub tag: [u8; 4],
    /// Offset of the tag's first byte.
    pub start: usize,
    /// Offset of the length prefix.
    pub len_start: usize,
    /// Offset of the payload's first byte.
    pub payload_start: usize,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Offset one past the trailing CRC (start of the next section).
    pub end: usize,
}

/// Walks a v2 container's section frame table by seeking: only the
/// 5-byte header and each 12-byte section header are read; payloads are
/// skipped. This is the O(#sections) scan the store's lazy open and
/// [`section_spans`] both use — one frame-table walk, shared.
///
/// # Errors
/// Fails on bad magic, a non-v2 version, or malformed framing (a
/// truncated header/payload or an implausible length prefix). CRCs are
/// *not* verified — extents are still well-defined over a bit-flipped
/// payload; checksums are the payload readers' job.
pub(crate) fn scan_spans(r: &mut (impl Read + io::Seek)) -> io::Result<Vec<SectionSpan>> {
    let total = r.seek(io::SeekFrom::End(0))?;
    r.seek(io::SeekFrom::Start(0))?;
    let mut head = [0u8; 5];
    if read_full(r, &mut head)? < 5 || &head[..4] != MAGIC {
        return Err(corrupt("not a WETZ file"));
    }
    if head[4] != V2 {
        return Err(corrupt("section spans need a v2 container"));
    }
    let mut spans = Vec::new();
    let mut at = 5u64;
    while at < total {
        if total - at < 12 {
            return Err(corrupt("truncated section header"));
        }
        r.seek(io::SeekFrom::Start(at))?;
        let mut hdr = [0u8; 12];
        if read_full(r, &mut hdr)? < 12 {
            return Err(corrupt("truncated section header"));
        }
        let tag: [u8; 4] = hdr[..4].try_into().unwrap();
        let len = u64::from_le_bytes(hdr[4..12].try_into().unwrap());
        if len > MAX_SECTION {
            return Err(corrupt("length prefix implausibly large"));
        }
        let payload_start = at + 12;
        if total - payload_start < len + 4 {
            return Err(corrupt("truncated section payload"));
        }
        let end = payload_start + len + 4;
        spans.push(SectionSpan {
            tag,
            start: at as usize,
            len_start: at as usize + 4,
            payload_start: payload_start as usize,
            payload_len: len as usize,
            end: end as usize,
        });
        at = end;
        if tag == TAG_ENDW {
            break;
        }
    }
    Ok(spans)
}

/// Maps a well-formed v2 container image to its section extents.
///
/// # Errors
/// Fails on bad magic, a non-v2 version, or malformed framing — this is
/// a tool for dissecting *pristine* files before mutating them, not a
/// hardened parser.
pub fn section_spans(bytes: &[u8]) -> io::Result<Vec<SectionSpan>> {
    scan_spans(&mut io::Cursor::new(bytes))
}

// ---------------------------------------------------------------------
// Section payload codecs.
// ---------------------------------------------------------------------

/// Serializes a build configuration + tier flag in the `CONF` payload
/// layout. Shared with the capture manifest writer, which records the
/// capturing configuration so resumed runs and `seal` reconstruct the
/// exact same WET.
pub(crate) fn write_conf_parts(config: &WetConfig, tier2: bool) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    w_u8(&mut w, matches!(config.ts_mode, TsMode::Global) as u8)?;
    w_u32(&mut w, config.stream.table_bits_max)?;
    w_u64(&mut w, config.stream.trial_len as u64)?;
    w_u32(&mut w, config.stream.candidates.len() as u32)?;
    for &m in &config.stream.candidates {
        w_method(&mut w, m)?;
    }
    w_u8(&mut w, config.group_values as u8)?;
    w_u8(&mut w, config.infer_local_edges as u8)?;
    w_u8(&mut w, config.share_edge_labels as u8)?;
    w_u8(&mut w, tier2 as u8)?;
    Ok(w)
}

fn write_conf(wet: &Wet) -> io::Result<Vec<u8>> {
    write_conf_parts(&wet.config, wet.tier2)
}

pub(crate) fn parse_conf(p: &[u8]) -> io::Result<(WetConfig, bool)> {
    let r = &mut &*p;
    let ts_mode = if r_u8(r)? == 1 { TsMode::Global } else { TsMode::Local };
    let table_bits_max = r_u32(r)?;
    let trial_len = r_u64(r)? as usize;
    let n_cand = cap_count(r_u32(r)? as usize, r.len(), 5, "candidate method")?;
    let mut candidates = Vec::with_capacity(n_cand);
    for _ in 0..n_cand {
        candidates.push(r_method(r)?);
    }
    let group_values = r_u8(r)? == 1;
    let infer_local_edges = r_u8(r)? == 1;
    let share_edge_labels = r_u8(r)? == 1;
    let tier2 = r_u8(r)? == 1;
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in CONF"));
    }
    // `num_threads` and the capture policy are execution knobs, not
    // data: they are deliberately not part of the format (files must be
    // byte-identical across thread counts and capture segmentations),
    // so reading resets them to the defaults.
    let config = WetConfig {
        ts_mode,
        stream: StreamConfig { table_bits_max, trial_len, candidates, ..Default::default() },
        group_values,
        infer_local_edges,
        share_edge_labels,
        capture: Default::default(),
        serve: Default::default(),
    };
    Ok((config, tier2))
}

fn write_bind(wet: &Wet) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    w_u64(&mut w, wet.nodes.len() as u64)?;
    for n in &wet.nodes {
        w_u32(&mut w, n.func.0)?;
        w_u64(&mut w, n.path_id)?;
        w_u64s(&mut w, &n.blocks.iter().map(|b| b.0 as u64).collect::<Vec<_>>())?;
        w_u64(&mut w, n.stmts.len() as u64)?;
        for s in &n.stmts {
            w_u32(&mut w, s.id.0)?;
            w_u32(&mut w, s.block_idx as u32)?;
            w_u8(&mut w, s.has_def as u8)?;
            w_u32(&mut w, s.group)?;
            w_u32(&mut w, s.member)?;
        }
        w_u32(&mut w, n.n_execs)?;
        w_u64(&mut w, n.ts_first)?;
        w_u64(&mut w, n.ts_last)?;
        w_u64(&mut w, n.groups.len() as u64)?;
        for g in &n.groups {
            w_u8(&mut w, g.pattern.is_some() as u8)?;
            w_u32(&mut w, g.n_uvals)?;
            w_u64(&mut w, g.uvals.len() as u64)?;
        }
        w_u64s(&mut w, &n.cf_succs.iter().map(|p| p.0 as u64).collect::<Vec<_>>())?;
        w_u64s(&mut w, &n.cf_preds.iter().map(|p| p.0 as u64).collect::<Vec<_>>())?;
        // Intra edges, sorted for deterministic output.
        let mut keys: Vec<(StmtId, u8)> = n.intra.keys().copied().collect();
        keys.sort();
        w_u64(&mut w, keys.len() as u64)?;
        for key in keys {
            w_u32(&mut w, key.0 .0)?;
            w_u8(&mut w, key.1)?;
            let ies = &n.intra[&key];
            w_u64(&mut w, ies.len() as u64)?;
            for ie in ies {
                w_u32(&mut w, ie.src.0)?;
                w_u8(&mut w, ie.complete as u8)?;
                match &ie.ks {
                    None => w_u8(&mut w, 0)?,
                    Some(ks) => {
                        w_u8(&mut w, 1)?;
                        w_u64(&mut w, ks.len() as u64)?;
                    }
                }
            }
        }
    }
    w_u64(&mut w, wet.edges.len() as u64)?;
    for e in &wet.edges {
        w_u32(&mut w, e.src_node.0)?;
        w_u32(&mut w, e.src_stmt.0)?;
        w_u32(&mut w, e.dst_node.0)?;
        w_u32(&mut w, e.dst_stmt.0)?;
        w_u8(&mut w, e.slot)?;
        w_u32(&mut w, e.labels)?;
    }
    w_u64(&mut w, wet.labels.len() as u64)?;
    for l in &wet.labels {
        w_u32(&mut w, l.len)?;
    }
    w_u32(&mut w, wet.first.0 .0)?;
    w_u64(&mut w, wet.first.1)?;
    w_u32(&mut w, wet.last.0 .0)?;
    w_u64(&mut w, wet.last.1)?;
    Ok(w)
}

/// Structure decoded from `BIND`: a complete WET skeleton whose every
/// sequence is an [`Seq::Unavailable`] placeholder of the right length,
/// waiting for the data sections to fill it in.
pub(crate) struct Bound {
    pub(crate) nodes: Vec<Node>,
    pub(crate) node_index: HashMap<(FuncId, u64), NodeId>,
    pub(crate) edges: Vec<Edge>,
    pub(crate) labels: Vec<LabelSeq>,
    pub(crate) in_edges: HashMap<(NodeId, StmtId, u8), Vec<u32>>,
    pub(crate) out_edges: HashMap<(NodeId, StmtId), Vec<u32>>,
    pub(crate) first: (NodeId, u64),
    pub(crate) last: (NodeId, u64),
    /// Total sequence slots (for recovered/lost accounting).
    pub(crate) total_seqs: u64,
}

pub(crate) fn parse_bind(p: &[u8]) -> io::Result<Bound> {
    let r = &mut &*p;
    let n_nodes = cap_count(r_u64(r)? as usize, r.len(), 64, "node")?;
    let mut nodes = Vec::with_capacity(n_nodes);
    let mut node_index = HashMap::new();
    let mut total_seqs = 0u64;
    for ni in 0..n_nodes {
        let func = FuncId(r_u32(r)?);
        let path_id = r_u64(r)?;
        let blocks: Vec<BlockId> = r_u64s(r)?.into_iter().map(|b| BlockId(b as u32)).collect();
        let n_stmts = cap_count(r_u64(r)? as usize, r.len(), 17, "statement")?;
        let mut stmts = Vec::with_capacity(n_stmts);
        let mut stmt_pos = HashMap::new();
        for si in 0..n_stmts {
            let id = StmtId(r_u32(r)?);
            let block_idx = r_u32(r)? as u16;
            let has_def = r_u8(r)? == 1;
            let group = r_u32(r)?;
            let member = r_u32(r)?;
            stmt_pos.insert(id, si as u32);
            stmts.push(NodeStmt { id, block_idx, has_def, group, member });
        }
        let n_execs = r_u32(r)?;
        let ts_first = r_u64(r)?;
        let ts_last = r_u64(r)?;
        let n_groups = cap_count(r_u64(r)? as usize, r.len(), 13, "group")?;
        if n_groups > n_stmts + 1 {
            return Err(corrupt("group count too large"));
        }
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let has_pattern = match r_u8(r)? {
                0 => false,
                1 => true,
                _ => return Err(corrupt("bad pattern flag")),
            };
            let n_uvals = r_u32(r)?;
            let n_members = r_u64(r)? as usize;
            if n_members > n_stmts {
                return Err(corrupt("member count too large"));
            }
            let pattern = has_pattern.then_some(Seq::Unavailable(n_execs as u64));
            let uvals = (0..n_members).map(|_| Seq::Unavailable(n_uvals as u64)).collect::<Vec<_>>();
            total_seqs += has_pattern as u64 + n_members as u64;
            groups.push(Group { pattern, uvals, n_uvals });
        }
        let cf_succs: Vec<NodeId> = r_u64s(r)?.into_iter().map(|p| NodeId(p as u32)).collect();
        let cf_preds: Vec<NodeId> = r_u64s(r)?.into_iter().map(|p| NodeId(p as u32)).collect();
        let n_intra = cap_count(r_u64(r)? as usize, r.len(), 13, "intra key")?;
        let mut intra = HashMap::with_capacity(n_intra);
        for _ in 0..n_intra {
            let dst = StmtId(r_u32(r)?);
            let slot = r_u8(r)?;
            let n_ies = cap_count(r_u64(r)? as usize, r.len(), 6, "intra edge")?;
            let mut ies = Vec::with_capacity(n_ies);
            for _ in 0..n_ies {
                let src = StmtId(r_u32(r)?);
                let complete = r_u8(r)? == 1;
                let ks = match r_u8(r)? {
                    0 => None,
                    1 => Some(Seq::Unavailable(r_u64(r)?)),
                    _ => return Err(corrupt("bad coverage flag")),
                };
                total_seqs += ks.is_some() as u64;
                ies.push(IntraEdge { src, complete, ks });
            }
            intra.insert((dst, slot), ies);
        }
        node_index.insert((func, path_id), NodeId(ni as u32));
        total_seqs += 1; // ts
        nodes.push(Node {
            func,
            path_id,
            blocks,
            stmts,
            n_execs,
            ts: Seq::Unavailable(n_execs as u64),
            ts_first,
            ts_last,
            groups,
            cf_succs,
            cf_preds,
            intra,
            stmt_pos,
        });
    }

    let n_edges = cap_count(r_u64(r)? as usize, r.len(), 21, "edge")?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edges.push(Edge {
            src_node: NodeId(r_u32(r)?),
            src_stmt: StmtId(r_u32(r)?),
            dst_node: NodeId(r_u32(r)?),
            dst_stmt: StmtId(r_u32(r)?),
            slot: r_u8(r)?,
            labels: r_u32(r)?,
        });
    }
    let n_labels = cap_count(r_u64(r)? as usize, r.len(), 4, "label")?;
    let mut labels = Vec::with_capacity(n_labels);
    for _ in 0..n_labels {
        let len = r_u32(r)?;
        labels.push(LabelSeq {
            len,
            dst: Seq::Unavailable(len as u64),
            src: Seq::Unavailable(len as u64),
        });
        total_seqs += 2;
    }
    for e in &edges {
        if e.labels as usize >= labels.len()
            || e.src_node.index() >= nodes.len()
            || e.dst_node.index() >= nodes.len()
        {
            return Err(corrupt("edge references out of range"));
        }
    }
    let mut in_edges: HashMap<(NodeId, StmtId, u8), Vec<u32>> = HashMap::new();
    let mut out_edges: HashMap<(NodeId, StmtId), Vec<u32>> = HashMap::new();
    for (i, e) in edges.iter().enumerate() {
        in_edges.entry((e.dst_node, e.dst_stmt, e.slot)).or_default().push(i as u32);
        out_edges.entry((e.src_node, e.src_stmt)).or_default().push(i as u32);
    }
    let first = (NodeId(r_u32(r)?), r_u64(r)?);
    let last = (NodeId(r_u32(r)?), r_u64(r)?);
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in BIND"));
    }
    Ok(Bound { nodes, node_index, edges, labels, in_edges, out_edges, first, last, total_seqs })
}

/// Sorted intra-edge keys of one node — writer and reader must walk the
/// coverage sets in the same order.
fn intra_keys(n: &Node) -> Vec<(StmtId, u8)> {
    let mut keys: Vec<(StmtId, u8)> = n.intra.keys().copied().collect();
    keys.sort();
    keys
}

fn write_tseq(wet: &Wet) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    for n in &wet.nodes {
        w_seq(&mut w, &n.ts)?;
    }
    Ok(w)
}

pub(crate) fn fill_tseq(nodes: &mut [Node], p: &[u8]) -> io::Result<()> {
    let r = &mut &*p;
    for (ni, n) in nodes.iter_mut().enumerate() {
        let s = r_seq(r)?;
        if s.len() != n.n_execs as usize {
            return Err(corrupt(&format!("node {ni}: ts length mismatch")));
        }
        n.ts = s;
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in TSEQ"));
    }
    Ok(())
}

pub(crate) fn mark_tseq_lost(nodes: &mut [Node]) {
    for n in nodes {
        n.ts = Seq::Unavailable(n.ts.len() as u64);
    }
}

fn write_vals(wet: &Wet) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    for n in &wet.nodes {
        for g in &n.groups {
            if let Some(p) = &g.pattern {
                w_seq(&mut w, p)?;
            }
            for u in &g.uvals {
                w_seq(&mut w, u)?;
            }
        }
    }
    Ok(w)
}

pub(crate) fn fill_vals(nodes: &mut [Node], p: &[u8]) -> io::Result<()> {
    let r = &mut &*p;
    for n in nodes.iter_mut() {
        for g in &mut n.groups {
            if let Some(pat) = &mut g.pattern {
                let s = r_seq(r)?;
                if s.len() != n.n_execs as usize {
                    return Err(corrupt("pattern length mismatch"));
                }
                *pat = s;
            }
            for u in &mut g.uvals {
                let s = r_seq(r)?;
                if s.len() != g.n_uvals as usize {
                    return Err(corrupt("uvals length mismatch"));
                }
                *u = s;
            }
        }
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in VALS"));
    }
    Ok(())
}

pub(crate) fn mark_vals_lost(nodes: &mut [Node]) {
    for n in nodes {
        for g in &mut n.groups {
            if let Some(p) = &mut g.pattern {
                *p = Seq::Unavailable(p.len() as u64);
            }
            for u in &mut g.uvals {
                *u = Seq::Unavailable(u.len() as u64);
            }
        }
    }
}

fn write_edgl(wet: &Wet) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    for n in &wet.nodes {
        for key in intra_keys(n) {
            for ie in &n.intra[&key] {
                if let Some(ks) = &ie.ks {
                    w_seq(&mut w, ks)?;
                }
            }
        }
    }
    for l in &wet.labels {
        w_seq(&mut w, &l.dst)?;
        w_seq(&mut w, &l.src)?;
    }
    Ok(w)
}

pub(crate) fn fill_edgl(nodes: &mut [Node], labels: &mut [LabelSeq], p: &[u8]) -> io::Result<()> {
    let r = &mut &*p;
    for n in nodes.iter_mut() {
        for key in intra_keys(n) {
            for ie in n.intra.get_mut(&key).unwrap() {
                if let Some(ks) = &mut ie.ks {
                    let s = r_seq(r)?;
                    if s.len() != ks.len() {
                        return Err(corrupt("coverage set length mismatch"));
                    }
                    *ks = s;
                }
            }
        }
    }
    for l in labels.iter_mut() {
        let dst = r_seq(r)?;
        let src = r_seq(r)?;
        if dst.len() != l.len as usize || src.len() != l.len as usize {
            return Err(corrupt("label stream length mismatch"));
        }
        l.dst = dst;
        l.src = src;
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in EDGL"));
    }
    Ok(())
}

pub(crate) fn mark_edgl_lost(nodes: &mut [Node], labels: &mut [LabelSeq]) {
    for n in nodes {
        for ies in n.intra.values_mut() {
            for ie in ies {
                if let Some(ks) = &mut ie.ks {
                    *ks = Seq::Unavailable(ks.len() as u64);
                }
            }
        }
    }
    for l in labels {
        l.dst = Seq::Unavailable(l.len as u64);
        l.src = Seq::Unavailable(l.len as u64);
    }
}

/// Encodes the NDET stream: a presence flag (`0` = unavailable, the
/// salvage placeholder; `1` = recorded) then, when present, the record
/// count and `kind u8 | ts u64 | value u64` triples in consumption
/// order. The flag lets a rewritten salvaged file round-trip "the
/// recording was lost" instead of silently claiming "there was none".
fn write_ndet(wet: &Wet) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    match &wet.ndet {
        None => w_u8(&mut w, 0)?,
        Some(recs) => {
            w_u8(&mut w, 1)?;
            w_u64(&mut w, recs.len() as u64)?;
            for rec in recs {
                w_u8(&mut w, rec.kind as u8)?;
                w_u64(&mut w, rec.ts)?;
                w_u64(&mut w, rec.value as u64)?;
            }
        }
    }
    Ok(w)
}

/// Decodes an NDET payload. A kind byte outside the known set fails
/// closed (a newer writer's records must not replay through the wrong
/// source); `Ok(None)` means the section says the stream is lost.
pub(crate) fn parse_ndet(p: &[u8]) -> io::Result<Option<Vec<NdetRec>>> {
    let r = &mut &*p;
    let present = match r_u8(r)? {
        0 => false,
        1 => true,
        t => return Err(corrupt(&format!("bad NDET presence flag {t}"))),
    };
    let recs = if present {
        let n = cap_count(r_u64(r)? as usize, r.len(), 17, "ndet record")?;
        let mut recs = Vec::with_capacity(n);
        for _ in 0..n {
            let kb = r_u8(r)?;
            let kind = wet_interp::NdetKind::from_byte(kb)
                .ok_or_else(|| corrupt(&format!("unknown NDET record kind {kb}")))?;
            let ts = r_u64(r)?;
            let value = r_u64(r)? as i64;
            recs.push(NdetRec { kind, ts, value });
        }
        Some(recs)
    } else {
        None
    };
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in NDET"));
    }
    Ok(recs)
}

fn write_stat(wet: &Wet) -> io::Result<Vec<u8>> {
    let mut w = Vec::new();
    let s = &wet.sizes;
    for v in [s.orig_ts, s.orig_vals, s.orig_edges, s.t1_ts, s.t1_vals, s.t1_edges, s.t2_ts, s.t2_vals, s.t2_edges] {
        w_u64(&mut w, v)?;
    }
    let st = &wet.stats;
    for v in [
        st.stmts_executed,
        st.paths_executed,
        st.blocks_executed,
        st.nodes,
        st.edges,
        st.inferred_edges,
        st.shared_label_seqs,
        st.dynamic_deps,
    ] {
        w_u64(&mut w, v)?;
    }
    w_u64(&mut w, st.methods.len() as u64)?;
    for (k, v) in &st.methods {
        w_string(&mut w, k)?;
        w_u64(&mut w, *v)?;
    }
    Ok(w)
}

pub(crate) fn parse_stat(p: &[u8]) -> io::Result<(WetSizes, WetStats)> {
    let r = &mut &*p;
    let mut sv = [0u64; 9];
    for v in &mut sv {
        *v = r_u64(r)?;
    }
    let sizes = WetSizes {
        orig_ts: sv[0],
        orig_vals: sv[1],
        orig_edges: sv[2],
        t1_ts: sv[3],
        t1_vals: sv[4],
        t1_edges: sv[5],
        t2_ts: sv[6],
        t2_vals: sv[7],
        t2_edges: sv[8],
    };
    let mut tv = [0u64; 8];
    for v in &mut tv {
        *v = r_u64(r)?;
    }
    let n_methods = cap_count(r_u64(r)? as usize, r.len(), 12, "method histogram entry")?;
    let mut methods = std::collections::BTreeMap::new();
    for _ in 0..n_methods {
        let k = r_string(r)?;
        let v = r_u64(r)?;
        methods.insert(k, v);
    }
    if !r.is_empty() {
        return Err(corrupt("trailing bytes in STAT"));
    }
    let stats = WetStats {
        stmts_executed: tv[0],
        paths_executed: tv[1],
        blocks_executed: tv[2],
        nodes: tv[3],
        edges: tv[4],
        inferred_edges: tv[5],
        shared_label_seqs: tv[6],
        dynamic_deps: tv[7],
        methods,
    };
    Ok((sizes, stats))
}

// ---------------------------------------------------------------------
// Whole-container read/write.
// ---------------------------------------------------------------------

/// Assembles a WET from a scanned v2 container, salvaging what it can.
/// Returns `(None, report)` when nothing usable survives (the `BIND`
/// structure section is required); otherwise the report records what
/// was recovered and what the strict reader would object to.
fn read_v2(r: &mut impl Read) -> io::Result<(Option<Wet>, FsckReport)> {
    let mut scan = scan_sections(r)?;
    // One scan serves both consumers: the payloads feed the decoder
    // below, the extents ride along on the loaded WET so fsck tooling
    // and the lazy trace store never re-walk the frame table.
    let spans = scan.spans();
    let mut report = FsckReport { version: V2, ..Default::default() };

    // Per-section statuses, then Missing entries for absent required
    // sections, so `sections_checked` always counts the full format.
    let mut seen: Vec<[u8; 4]> = Vec::new();
    for e in &scan.entries {
        seen.push(e.tag);
        report.sections.push(SectionReport {
            tag: String::from_utf8_lossy(&e.tag).into_owned(),
            len: e.len,
            status: e.status.clone(),
        });
    }
    for tag in CANONICAL.iter().chain([&TAG_ENDW]) {
        if !seen.contains(tag) {
            report.sections.push(SectionReport {
                tag: String::from_utf8_lossy(tag).into_owned(),
                len: 0,
                status: SectionStatus::Missing,
            });
        }
    }

    // File-level structure problems the strict reader rejects.
    let canonical_full: Vec<[u8; 4]> = CANONICAL.iter().chain([&TAG_ENDW]).copied().collect();
    if scan.trailing_garbage {
        report.structure_error = Some("trailing bytes after ENDW trailer".into());
    } else if seen == canonical_full {
        if scan.trailer != Some(CANONICAL.len() as u64) {
            report.structure_error = Some("trailer section count mismatch".into());
        }
    } else if report.sections.iter().all(|s| s.status.is_ok()) {
        // Only complain about ordering when no per-section damage
        // already explains the deviation.
        report.structure_error = Some("sections missing, duplicated, or out of order".into());
    }

    // Structure first: without BIND there is nothing to salvage onto.
    let bound = match scan.payloads.remove(&TAG_BIND).map(|p| parse_bind(&p)) {
        Some(Ok(b)) => b,
        Some(Err(e)) => {
            mark_section(&mut report, TAG_BIND, SectionStatus::Malformed(e.to_string()));
            report.fatal = Some(format!("structure section unusable: {e}"));
            return Ok((None, report));
        }
        None => {
            report.fatal = Some("structure section unusable: BIND lost".into());
            return Ok((None, report));
        }
    };
    let Bound { mut nodes, node_index, edges, mut labels, in_edges, out_edges, first, last, total_seqs } = bound;

    let conf = match scan.payloads.remove(&TAG_CONF).map(|p| parse_conf(&p)) {
        Some(Ok(c)) => Some(c),
        Some(Err(e)) => {
            mark_section(&mut report, TAG_CONF, SectionStatus::Malformed(e.to_string()));
            None
        }
        None => None,
    };

    match scan.payloads.remove(&TAG_TSEQ).map(|p| fill_tseq(&mut nodes, &p)) {
        Some(Ok(())) => {}
        Some(Err(e)) => {
            mark_section(&mut report, TAG_TSEQ, SectionStatus::Malformed(e.to_string()));
            mark_tseq_lost(&mut nodes);
        }
        None => {}
    }
    match scan.payloads.remove(&TAG_VALS).map(|p| fill_vals(&mut nodes, &p)) {
        Some(Ok(())) => {}
        Some(Err(e)) => {
            mark_section(&mut report, TAG_VALS, SectionStatus::Malformed(e.to_string()));
            mark_vals_lost(&mut nodes);
        }
        None => {}
    }
    match scan.payloads.remove(&TAG_EDGL).map(|p| fill_edgl(&mut nodes, &mut labels, &p)) {
        Some(Ok(())) => {}
        Some(Err(e)) => {
            mark_section(&mut report, TAG_EDGL, SectionStatus::Malformed(e.to_string()));
            mark_edgl_lost(&mut nodes, &mut labels);
        }
        None => {}
    }
    let ndet = match scan.payloads.remove(&TAG_NDET).map(|p| parse_ndet(&p)) {
        Some(Ok(v)) => v,
        Some(Err(e)) => {
            // Includes unknown record kinds from a newer writer: the
            // stream is unusable for replay, fail closed to "lost".
            mark_section(&mut report, TAG_NDET, SectionStatus::Malformed(e.to_string()));
            None
        }
        None => None,
    };
    let (sizes, stats) = match scan.payloads.remove(&TAG_STAT).map(|p| parse_stat(&p)) {
        Some(Ok(ss)) => ss,
        Some(Err(e)) => {
            mark_section(&mut report, TAG_STAT, SectionStatus::Malformed(e.to_string()));
            Default::default()
        }
        None => Default::default(),
    };

    let (config, tier2) = match conf {
        Some((c, t2)) => (c, t2),
        // CONF lost: default configuration; the tier is recoverable
        // from the sequences themselves.
        None => {
            let t2 = nodes.iter().any(|n| matches!(n.ts, Seq::Compressed(_)))
                || labels.iter().any(|l| matches!(l.dst, Seq::Compressed(_)));
            (WetConfig::default(), t2)
        }
    };

    let wet = Wet {
        config,
        nodes,
        node_index,
        edges,
        labels,
        in_edges,
        out_edges,
        first,
        last,
        sizes,
        stats,
        tier2,
        ndet,
        section_index: Some(spans),
    };
    if let Err(e) = wet.validate() {
        // The skeleton itself is inconsistent — not recoverable.
        report.fatal = Some(format!("validation failed: {e}"));
        return Ok((None, report));
    }
    report.seqs_lost = wet.unavailable_seqs();
    report.seqs_recovered = total_seqs - report.seqs_lost;
    Ok((Some(wet), report))
}

fn mark_section(report: &mut FsckReport, tag: [u8; 4], status: SectionStatus) {
    let name = String::from_utf8_lossy(&tag).into_owned();
    if let Some(s) = report.sections.iter_mut().find(|s| s.tag == name) {
        s.status = status;
    }
}

impl Wet {
    /// Serializes the WET as a v2 sectioned container.
    ///
    /// # Errors
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w_u8(w, V2)?;
        w_section(w, TAG_CONF, &write_conf(self)?)?;
        w_section(w, TAG_BIND, &write_bind(self)?)?;
        w_section(w, TAG_TSEQ, &write_tseq(self)?)?;
        w_section(w, TAG_VALS, &write_vals(self)?)?;
        w_section(w, TAG_EDGL, &write_edgl(self)?)?;
        w_section(w, TAG_NDET, &write_ndet(self)?)?;
        w_section(w, TAG_STAT, &write_stat(self)?)?;
        let mut trailer = Vec::new();
        w_u64(&mut trailer, CANONICAL.len() as u64)?;
        w_section(w, TAG_ENDW, &trailer)
    }

    /// Deserializes a WET written by [`write_to`](Self::write_to) (v2)
    /// or by the legacy v1 writer ([`write_to_v1`](Self::write_to_v1)).
    /// Strict: any damage — a failed checksum, missing or reordered
    /// section, trailing bytes, or structural inconsistency — is an
    /// error. Use [`read_salvaging`](Self::read_salvaging) to recover
    /// what survives from a damaged file.
    ///
    /// # Errors
    /// Fails on bad magic, unsupported version, or malformed input.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        match read_header(r)? {
            V1 => read_v1(r),
            _ => {
                let (wet, report) = read_v2(r)?;
                match wet {
                    Some(w) if report.is_clean() => Ok(w),
                    _ => Err(corrupt(
                        &report.first_problem().unwrap_or_else(|| "damaged container".into()),
                    )),
                }
            }
        }
    }

    /// Reads a damaged v2 container, recovering every section whose
    /// checksum verifies. Lost label sequences become
    /// [`Seq::Unavailable`] placeholders (the degraded query paths
    /// report them instead of failing); lost configuration or
    /// statistics fall back to defaults. The report says exactly what
    /// was kept. v1 files have no checksums to salvage by, so they
    /// either load cleanly or fail.
    ///
    /// # Errors
    /// Fails when no usable WET remains — the structure (`BIND`)
    /// section is unrecoverable or inconsistent.
    pub fn read_salvaging(r: &mut impl Read) -> io::Result<(Self, FsckReport)> {
        match read_header(r)? {
            V1 => {
                let wet = read_v1(r)?;
                Ok((wet, FsckReport { version: V1, ..Default::default() }))
            }
            _ => {
                let (wet, report) = read_v2(r)?;
                match wet {
                    Some(w) => Ok((w, report)),
                    None => Err(corrupt(
                        &report.fatal.clone().unwrap_or_else(|| "damaged container".into()),
                    )),
                }
            }
        }
    }

    /// Integrity-checks a `.wetz` file without requiring it to be
    /// loadable: every section is scanned and checksummed, the
    /// recoverable parts are assembled and validated, and the report
    /// records section statuses and sequence recovery counts. For v1
    /// files (no checksums) this is a strict parse: clean or fatal.
    ///
    /// # Errors
    /// Only on genuine I/O failure; damage is reported, not raised.
    pub fn fsck(r: &mut impl Read) -> io::Result<FsckReport> {
        let version = match read_header(r) {
            Ok(v) => v,
            Err(e) if e.kind() == io::ErrorKind::InvalidData || e.kind() == io::ErrorKind::UnexpectedEof => {
                return Ok(FsckReport { fatal: Some(e.to_string()), ..Default::default() });
            }
            Err(e) => return Err(e),
        };
        if version == V1 {
            let mut report = FsckReport { version: V1, ..Default::default() };
            if let Err(e) = read_v1(r) {
                if e.kind() == io::ErrorKind::InvalidData || e.kind() == io::ErrorKind::UnexpectedEof {
                    report.fatal = Some(e.to_string());
                } else {
                    return Err(e);
                }
            }
            return Ok(report);
        }
        let (_, report) = read_v2(r)?;
        Ok(report)
    }

    /// Strictly reads a container from `path` through the
    /// fault-injectable I/O layer — the path-level counterpart of
    /// [`read_from`](Self::read_from) that CLI and repair code use so
    /// a `WET_FAULT_*` plan can intercept the read.
    ///
    /// # Errors
    /// I/O failures (including injected ones) and container damage.
    pub fn read_from_path(path: &Path, io_layer: &dyn Io) -> io::Result<Self> {
        let bytes = io_layer.read(path)?;
        Self::read_from(&mut bytes.as_slice())
    }

    /// Salvage-reads a container from `path` through the I/O layer;
    /// see [`read_salvaging`](Self::read_salvaging).
    ///
    /// # Errors
    /// I/O failures and fatally-damaged containers.
    pub fn read_salvaging_path(path: &Path, io_layer: &dyn Io) -> io::Result<(Self, FsckReport)> {
        let bytes = io_layer.read(path)?;
        Self::read_salvaging(&mut bytes.as_slice())
    }

    /// Durably writes the container at `path` through the I/O layer:
    /// sibling temp file, fsync, then atomic rename — a fault mid-write
    /// leaves the old file (or no file) under the final name, never a
    /// torn container.
    ///
    /// # Errors
    /// Serialization and I/O failures (including injected ones); on
    /// error the temp file is cleaned up best-effort.
    pub fn write_to_path(&self, path: &Path, io_layer: &dyn Io) -> io::Result<()> {
        let mut bytes = Vec::new();
        self.write_to(&mut bytes)?;
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp_name);
        let write = || -> io::Result<()> {
            let mut f = io_layer.create(&tmp)?;
            io_layer.write(&mut f, &bytes)?;
            io_layer.fsync(&f)?;
            io_layer.rename(&tmp, path)
        };
        write().inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Serializes the WET in the legacy v1 layout (no sections, no
    /// checksums). Kept so tests can produce v1 inputs and verify the
    /// compatibility path; new files should use
    /// [`write_to`](Self::write_to).
    ///
    /// # Errors
    /// Propagates writer errors; v1 cannot represent salvage
    /// placeholders, so writing an unavailable sequence fails.
    pub fn write_to_v1(&self, w: &mut impl Write) -> io::Result<()> {
        if self.unavailable_seqs() > 0 || self.ndet.is_none() {
            return Err(corrupt("v1 cannot represent unavailable (salvaged) sequences"));
        }
        if self.ndet.as_ref().is_some_and(|v| !v.is_empty()) {
            return Err(corrupt("v1 cannot represent NDET records"));
        }
        w.write_all(MAGIC)?;
        w_u8(w, V1)?;
        w_u8(w, matches!(self.config.ts_mode, TsMode::Global) as u8)?;
        w_u32(w, self.config.stream.table_bits_max)?;
        w_u64(w, self.config.stream.trial_len as u64)?;
        w_u32(w, self.config.stream.candidates.len() as u32)?;
        for &m in &self.config.stream.candidates {
            w_method(w, m)?;
        }
        w_u8(w, self.config.group_values as u8)?;
        w_u8(w, self.config.infer_local_edges as u8)?;
        w_u8(w, self.config.share_edge_labels as u8)?;
        w_u8(w, self.tier2 as u8)?;
        w_u64(w, self.nodes.len() as u64)?;
        for n in &self.nodes {
            w_u32(w, n.func.0)?;
            w_u64(w, n.path_id)?;
            w_u64s(w, &n.blocks.iter().map(|b| b.0 as u64).collect::<Vec<_>>())?;
            w_u64(w, n.stmts.len() as u64)?;
            for s in &n.stmts {
                w_u32(w, s.id.0)?;
                w_u32(w, s.block_idx as u32)?;
                w_u8(w, s.has_def as u8)?;
                w_u32(w, s.group)?;
                w_u32(w, s.member)?;
            }
            w_u32(w, n.n_execs)?;
            w_seq(w, &n.ts)?;
            w_u64(w, n.ts_first)?;
            w_u64(w, n.ts_last)?;
            w_u64(w, n.groups.len() as u64)?;
            for g in &n.groups {
                w_opt_seq(w, &g.pattern)?;
                w_u32(w, g.n_uvals)?;
                w_u64(w, g.uvals.len() as u64)?;
                for u in &g.uvals {
                    w_seq(w, u)?;
                }
            }
            w_u64s(w, &n.cf_succs.iter().map(|p| p.0 as u64).collect::<Vec<_>>())?;
            w_u64s(w, &n.cf_preds.iter().map(|p| p.0 as u64).collect::<Vec<_>>())?;
            let keys = intra_keys(n);
            w_u64(w, keys.len() as u64)?;
            for key in keys {
                w_u32(w, key.0 .0)?;
                w_u8(w, key.1)?;
                let ies = &n.intra[&key];
                w_u64(w, ies.len() as u64)?;
                for ie in ies {
                    w_u32(w, ie.src.0)?;
                    w_u8(w, ie.complete as u8)?;
                    w_opt_seq(w, &ie.ks)?;
                }
            }
        }
        w_u64(w, self.edges.len() as u64)?;
        for e in &self.edges {
            w_u32(w, e.src_node.0)?;
            w_u32(w, e.src_stmt.0)?;
            w_u32(w, e.dst_node.0)?;
            w_u32(w, e.dst_stmt.0)?;
            w_u8(w, e.slot)?;
            w_u32(w, e.labels)?;
        }
        w_u64(w, self.labels.len() as u64)?;
        for l in &self.labels {
            w_u32(w, l.len)?;
            w_seq(w, &l.dst)?;
            w_seq(w, &l.src)?;
        }
        w_u32(w, self.first.0 .0)?;
        w_u64(w, self.first.1)?;
        w_u32(w, self.last.0 .0)?;
        w_u64(w, self.last.1)?;
        let s = &self.sizes;
        for v in [s.orig_ts, s.orig_vals, s.orig_edges, s.t1_ts, s.t1_vals, s.t1_edges, s.t2_ts, s.t2_vals, s.t2_edges]
        {
            w_u64(w, v)?;
        }
        let st = &self.stats;
        for v in [
            st.stmts_executed,
            st.paths_executed,
            st.blocks_executed,
            st.nodes,
            st.edges,
            st.inferred_edges,
            st.shared_label_seqs,
            st.dynamic_deps,
        ] {
            w_u64(w, v)?;
        }
        w_u64(w, st.methods.len() as u64)?;
        for (k, v) in &st.methods {
            w_string(w, k)?;
            w_u64(w, *v)?;
        }
        Ok(())
    }
}

fn read_header(r: &mut impl Read) -> io::Result<u8> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(corrupt("not a WETZ file"));
    }
    let version = r_u8(r)?;
    if version != V1 && version != V2 {
        return Err(corrupt("unsupported WETZ version"));
    }
    Ok(version)
}

/// Legacy v1 reader (header already consumed). No checksums: damage is
/// detected only where it breaks parsing or validation.
fn read_v1(r: &mut impl Read) -> io::Result<Wet> {
    let ts_mode = if r_u8(r)? == 1 { TsMode::Global } else { TsMode::Local };
    let table_bits_max = r_u32(r)?;
    let trial_len = r_u64(r)? as usize;
    let n_cand = r_u32(r)? as usize;
    if n_cand > 1024 {
        return Err(corrupt("too many candidate methods"));
    }
    let mut candidates = Vec::with_capacity(n_cand);
    for _ in 0..n_cand {
        candidates.push(r_method(r)?);
    }
    let group_values = r_u8(r)? == 1;
    let infer_local_edges = r_u8(r)? == 1;
    let share_edge_labels = r_u8(r)? == 1;
    let tier2 = r_u8(r)? == 1;
    let config = WetConfig {
        ts_mode,
        stream: StreamConfig { table_bits_max, trial_len, candidates, ..Default::default() },
        group_values,
        infer_local_edges,
        share_edge_labels,
        capture: Default::default(),
        serve: Default::default(),
    };

    let n_nodes = r_u64(r)? as usize;
    if n_nodes > 1 << 28 {
        return Err(corrupt("node count too large"));
    }
    let mut nodes = Vec::with_capacity(n_nodes.min(1 << 16));
    let mut node_index = HashMap::new();
    for ni in 0..n_nodes {
        let func = FuncId(r_u32(r)?);
        let path_id = r_u64(r)?;
        let blocks: Vec<BlockId> = r_u64s(r)?.into_iter().map(|b| BlockId(b as u32)).collect();
        let n_stmts = r_u64(r)? as usize;
        if n_stmts > 1 << 24 {
            return Err(corrupt("statement count too large"));
        }
        let mut stmts = Vec::with_capacity(n_stmts.min(1 << 16));
        let mut stmt_pos = HashMap::new();
        for si in 0..n_stmts {
            let id = StmtId(r_u32(r)?);
            let block_idx = r_u32(r)? as u16;
            let has_def = r_u8(r)? == 1;
            let group = r_u32(r)?;
            let member = r_u32(r)?;
            stmt_pos.insert(id, si as u32);
            stmts.push(NodeStmt { id, block_idx, has_def, group, member });
        }
        let n_execs = r_u32(r)?;
        let ts = r_seq(r)?;
        let ts_first = r_u64(r)?;
        let ts_last = r_u64(r)?;
        let n_groups = r_u64(r)? as usize;
        if n_groups > n_stmts + 1 {
            return Err(corrupt("group count too large"));
        }
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let pattern = r_opt_seq(r)?;
            let n_uvals = r_u32(r)?;
            let n_members = r_u64(r)? as usize;
            if n_members > n_stmts {
                return Err(corrupt("member count too large"));
            }
            let mut uvals = Vec::with_capacity(n_members);
            for _ in 0..n_members {
                uvals.push(r_seq(r)?);
            }
            groups.push(Group { pattern, uvals, n_uvals });
        }
        let cf_succs: Vec<NodeId> = r_u64s(r)?.into_iter().map(|p| NodeId(p as u32)).collect();
        let cf_preds: Vec<NodeId> = r_u64s(r)?.into_iter().map(|p| NodeId(p as u32)).collect();
        let n_intra = r_u64(r)? as usize;
        if n_intra > 1 << 24 {
            return Err(corrupt("intra count too large"));
        }
        let mut intra = HashMap::with_capacity(n_intra.min(1 << 16));
        for _ in 0..n_intra {
            let dst = StmtId(r_u32(r)?);
            let slot = r_u8(r)?;
            let n_ies = r_u64(r)? as usize;
            if n_ies > 1 << 20 {
                return Err(corrupt("intra edge list too large"));
            }
            let mut ies = Vec::with_capacity(n_ies.min(1 << 16));
            for _ in 0..n_ies {
                let src = StmtId(r_u32(r)?);
                let complete = r_u8(r)? == 1;
                let ks = r_opt_seq(r)?;
                ies.push(IntraEdge { src, complete, ks });
            }
            intra.insert((dst, slot), ies);
        }
        node_index.insert((func, path_id), NodeId(ni as u32));
        nodes.push(Node {
            func,
            path_id,
            blocks,
            stmts,
            n_execs,
            ts,
            ts_first,
            ts_last,
            groups,
            cf_succs,
            cf_preds,
            intra,
            stmt_pos,
        });
    }

    let n_edges = r_u64(r)? as usize;
    if n_edges > 1 << 28 {
        return Err(corrupt("edge count too large"));
    }
    let mut edges = Vec::with_capacity(n_edges.min(1 << 16));
    for _ in 0..n_edges {
        edges.push(Edge {
            src_node: NodeId(r_u32(r)?),
            src_stmt: StmtId(r_u32(r)?),
            dst_node: NodeId(r_u32(r)?),
            dst_stmt: StmtId(r_u32(r)?),
            slot: r_u8(r)?,
            labels: r_u32(r)?,
        });
    }
    let n_labels = r_u64(r)? as usize;
    if n_labels > 1 << 28 {
        return Err(corrupt("label count too large"));
    }
    let mut labels = Vec::with_capacity(n_labels.min(1 << 16));
    for _ in 0..n_labels {
        let len = r_u32(r)?;
        let dst = r_seq(r)?;
        let src = r_seq(r)?;
        labels.push(LabelSeq { len, dst, src });
    }
    for e in &edges {
        if e.labels as usize >= labels.len()
            || e.src_node.index() >= nodes.len()
            || e.dst_node.index() >= nodes.len()
        {
            return Err(corrupt("edge references out of range"));
        }
    }
    let mut in_edges: HashMap<(NodeId, StmtId, u8), Vec<u32>> = HashMap::new();
    let mut out_edges: HashMap<(NodeId, StmtId), Vec<u32>> = HashMap::new();
    for (i, e) in edges.iter().enumerate() {
        in_edges.entry((e.dst_node, e.dst_stmt, e.slot)).or_default().push(i as u32);
        out_edges.entry((e.src_node, e.src_stmt)).or_default().push(i as u32);
    }

    let first = (NodeId(r_u32(r)?), r_u64(r)?);
    let last = (NodeId(r_u32(r)?), r_u64(r)?);
    let mut sv = [0u64; 9];
    for v in &mut sv {
        *v = r_u64(r)?;
    }
    let sizes = WetSizes {
        orig_ts: sv[0],
        orig_vals: sv[1],
        orig_edges: sv[2],
        t1_ts: sv[3],
        t1_vals: sv[4],
        t1_edges: sv[5],
        t2_ts: sv[6],
        t2_vals: sv[7],
        t2_edges: sv[8],
    };
    let mut tv = [0u64; 8];
    for v in &mut tv {
        *v = r_u64(r)?;
    }
    let n_methods = r_u64(r)? as usize;
    if n_methods > 1 << 10 {
        return Err(corrupt("method histogram too large"));
    }
    let mut methods = std::collections::BTreeMap::new();
    for _ in 0..n_methods {
        let k = r_string(r)?;
        let v = r_u64(r)?;
        methods.insert(k, v);
    }
    let stats = WetStats {
        stmts_executed: tv[0],
        paths_executed: tv[1],
        blocks_executed: tv[2],
        nodes: tv[3],
        edges: tv[4],
        inferred_edges: tv[5],
        shared_label_seqs: tv[6],
        dynamic_deps: tv[7],
        methods,
    };

    let wet = Wet {
        config,
        nodes,
        node_index,
        edges,
        labels,
        in_edges,
        out_edges,
        first,
        last,
        sizes,
        stats,
        tier2,
        // v1 predates nondeterminism capture; such traces recorded no
        // ndet reads, so the stream is present and empty.
        ndet: Some(Vec::new()),
        section_index: None,
    };
    wet.validate().map_err(|e| corrupt(&e))?;
    Ok(wet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use crate::WetBuilder;
    use wet_interp::{Interp, InterpConfig};
    use wet_ir::ballarus::BallLarus;

    fn sample_wet(tier2: bool) -> (wet_ir::Program, Wet) {
        let p = crate::tests::looping_program();
        let (mut wet, _) = crate::tests::build_wet(&p, &[70], WetConfig::default());
        if tier2 {
            wet.compress();
        }
        (p, wet)
    }

    #[test]
    fn roundtrip_preserves_queries_both_tiers() {
        for tier2 in [false, true] {
            let (p, mut wet) = sample_wet(tier2);
            let mut bytes = Vec::new();
            wet.write_to(&mut bytes).unwrap();
            let mut back = Wet::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back.is_tier2(), tier2);
            assert_eq!(back.nodes().len(), wet.nodes().len());
            assert_eq!(back.sizes(), wet.sizes());
            let a = query::cf_trace_forward(&mut wet).unwrap();
            let b = query::cf_trace_forward(&mut back).unwrap();
            assert_eq!(a, b, "tier2={tier2}");
            for sid in 0..p.stmt_count() as u32 {
                let s = StmtId(sid);
                assert_eq!(
                    query::value_trace(&wet, s).unwrap(),
                    query::value_trace(&back, s).unwrap(),
                    "values of {s} (tier2={tier2})"
                );
                assert_eq!(
                    query::address_trace(&wet, &p, s).unwrap(),
                    query::address_trace(&back, &p, s).unwrap(),
                    "addresses of {s} (tier2={tier2})"
                );
            }
        }
    }

    #[test]
    fn v1_compat_roundtrip() {
        for tier2 in [false, true] {
            let (_p, mut wet) = sample_wet(tier2);
            let mut bytes = Vec::new();
            wet.write_to_v1(&mut bytes).unwrap();
            let mut back = Wet::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back.is_tier2(), tier2);
            let a = query::cf_trace_forward(&mut wet).unwrap();
            let b = query::cf_trace_forward(&mut back).unwrap();
            assert_eq!(a, b, "v1 tier2={tier2}");
        }
    }

    #[test]
    fn v2_serialization_is_deterministic() {
        let (_p, wet) = sample_wet(true);
        let mut a = Vec::new();
        let mut b = Vec::new();
        wet.write_to(&mut a).unwrap();
        wet.write_to(&mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn section_spans_cover_the_file() {
        let (_p, wet) = sample_wet(true);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let spans = section_spans(&bytes).unwrap();
        let tags: Vec<[u8; 4]> = spans.iter().map(|s| s.tag).collect();
        assert_eq!(tags, vec![TAG_CONF, TAG_BIND, TAG_TSEQ, TAG_VALS, TAG_EDGL, TAG_NDET, TAG_STAT, TAG_ENDW]);
        assert_eq!(spans[0].start, 5);
        for w in spans.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(spans.last().unwrap().end, bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOPE....".to_vec();
        assert!(Wet::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let (_p, wet) = sample_wet(true);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        for cut in [4, 16, bytes.len() / 3, bytes.len() - 1] {
            assert!(Wet::read_from(&mut &bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn single_bit_flip_detected_everywhere() {
        let (_p, wet) = sample_wet(false);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        // Every byte position, first bit: strict read must fail (the
        // flip lands in a checksummed section, its CRC, or the header).
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 1;
            assert!(Wet::read_from(&mut m.as_slice()).is_err(), "flip at byte {i} undetected");
        }
    }

    #[test]
    fn salvage_recovers_structure_when_values_damaged() {
        let (_p, mut wet) = sample_wet(true);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let spans = section_spans(&bytes).unwrap();
        let vals = spans.iter().find(|s| s.tag == TAG_VALS).unwrap();
        let mut m = bytes.clone();
        m[vals.payload_start + vals.payload_len / 2] ^= 0x40;
        assert!(Wet::read_from(&mut m.as_slice()).is_err());
        let (mut back, report) = Wet::read_salvaging(&mut m.as_slice()).unwrap();
        assert!(!report.is_clean());
        assert!(report.seqs_lost > 0);
        assert!(report.seqs_recovered > 0);
        assert_eq!(report.seqs_lost, back.unavailable_seqs());
        // Structure and control flow survive intact.
        let a = query::cf_trace_forward(&mut wet).unwrap();
        let b = query::cf_trace_forward(&mut back).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn repair_roundtrip_is_clean() {
        let (_p, wet) = sample_wet(true);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let spans = section_spans(&bytes).unwrap();
        let tseq = spans.iter().find(|s| s.tag == TAG_TSEQ).unwrap();
        let mut m = bytes.clone();
        m[tseq.payload_start] ^= 0xFF;
        let (salvaged, report) = Wet::read_salvaging(&mut m.as_slice()).unwrap();
        assert!(report.seqs_lost > 0);
        // Re-serializing the salvaged WET produces a container that is
        // itself clean (Unavailable placeholders round-trip).
        let mut repaired = Vec::new();
        salvaged.write_to(&mut repaired).unwrap();
        let report2 = Wet::fsck(&mut repaired.as_slice()).unwrap();
        assert!(report2.is_clean(), "{:?}", report2.first_problem());
        assert_eq!(report2.seqs_lost, report.seqs_lost);
        let back = Wet::read_from(&mut repaired.as_slice()).unwrap();
        assert_eq!(back.unavailable_seqs(), report.seqs_lost);
    }

    #[test]
    fn fsck_reports_clean_file() {
        let (_p, wet) = sample_wet(false);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let report = Wet::fsck(&mut bytes.as_slice()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.sections_checked(), 8);
        assert_eq!(report.sections_corrupt(), 0);
        assert_eq!(report.seqs_lost, 0);
        assert!(report.seqs_recovered > 0);
    }

    #[test]
    fn ndet_section_roundtrips_and_fails_closed() {
        let (_p, mut wet) = sample_wet(false);
        wet.ndet = Some(vec![
            NdetRec { kind: wet_interp::NdetKind::Env, ts: 1, value: 42 },
            NdetRec { kind: wet_interp::NdetKind::Clock, ts: 2, value: -7 },
            NdetRec { kind: wet_interp::NdetKind::Input, ts: 2, value: i64::MIN },
        ]);
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let back = Wet::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.ndet(), wet.ndet());

        // An unknown kind byte (a newer writer) is a typed corrupt
        // error on the strict path, never a silent mis-replay.
        let spans = section_spans(&bytes).unwrap();
        let nd = spans.iter().find(|s| s.tag == TAG_NDET).unwrap();
        let mut m = bytes.clone();
        let kind_off = nd.payload_start + 9; // flag u8 + count u64
        assert!(wet_interp::NdetKind::from_byte(m[kind_off]).is_some(), "offset must hit a kind byte");
        m[kind_off] = 250;
        // Restore the section CRC so only the kind byte is "wrong".
        let crc = {
            let mut c = crate::crc::Crc32::new();
            c.update(&m[nd.start..nd.payload_start + nd.payload_len]);
            c.finish()
        };
        m[nd.payload_start + nd.payload_len..nd.payload_start + nd.payload_len + 4]
            .copy_from_slice(&crc.to_le_bytes());
        let err = Wet::read_from(&mut m.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown NDET record kind"), "{err}");
        // Salvage keeps the rest but reports the stream lost.
        let (salvaged, report) = Wet::read_salvaging(&mut m.as_slice()).unwrap();
        assert!(salvaged.ndet().is_none());
        assert!(!report.is_clean());
        // The lost stream round-trips as lost, not as "none recorded".
        let mut repaired = Vec::new();
        salvaged.write_to(&mut repaired).unwrap();
        let back = Wet::read_from(&mut repaired.as_slice()).unwrap();
        assert!(back.ndet().is_none());
        // v1 can represent neither a lost stream nor records.
        assert!(salvaged.write_to_v1(&mut Vec::new()).is_err());
        assert!(wet.write_to_v1(&mut Vec::new()).is_err());
    }

    #[test]
    fn file_roundtrip_through_disk() {
        let p = crate::tests::looping_program();
        let bl = BallLarus::new(&p);
        let mut builder = WetBuilder::new(&p, &bl, WetConfig::default());
        Interp::new(&p, &bl, InterpConfig::default()).run(&[40], &mut builder).unwrap();
        let mut wet = builder.finish();
        wet.compress();
        let dir = std::env::temp_dir().join("wet-serial-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wetz");
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            wet.write_to(&mut f).unwrap();
        }
        let mut f = std::io::BufReader::new(std::fs::File::open(&path).unwrap());
        let mut back = Wet::read_from(&mut f).unwrap();
        assert_eq!(query::cf_trace_forward(&mut back).unwrap().len() as u64, wet.stats().paths_executed);
    }
}
