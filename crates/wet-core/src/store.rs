//! A sharded, multi-tenant trace store with lazy section decode.
//!
//! One `wet serve` process can hold many traces, but eagerly decoding
//! every `.wetz` into RAM makes resident cost proportional to the
//! *corpus*; the paper's premise is that compressed traces stay
//! queryable without wholesale decompression, and the same discipline
//! should govern loading. [`TraceStore`] opens a trace by walking only
//! the section frame table ([`crate::serial::section_spans`]'s scan,
//! shared with `fsck`) and decoding just `CONF` + `BIND` (+ the tiny
//! `STAT`): a complete WET skeleton whose sequences are
//! [`Seq::Unavailable`](crate::Seq) placeholders — cold-open cost is
//! O(BIND), not O(trace).
//!
//! The three data sections (`TSEQ`, `VALS`, `EDGL`) stay as byte ranges
//! against the file — mmap-backed where the platform provides it, plain
//! `pread` otherwise — and are CRC-verified, decoded, and spliced into
//! the skeleton on first touch ([`TraceStore::ensure`]). Decoding a
//! section materializes its tier-2 [`Seq::Compressed`] streams *without
//! decompressing them*; per-stream decompression stays lazy in the
//! query engine, whose `EngineCache` shares the same byte budget (each
//! opened trace inherits the store budget as its
//! `serve.cache_budget_bytes` unless it already set one).
//!
//! Resident sections are evicted least-recently-touched under a global
//! byte budget: eviction resets a section to `Seq::Unavailable`
//! placeholders (the salvage pattern — lengths survive, so validation
//! and degraded accounting stay exact) and a later touch refills it
//! from the file. Sections a query currently relies on are pinned and
//! never evicted mid-query. A CRC-bad or undecodable lazy section
//! surfaces as a typed [`StoreErr::Corrupt`] (and stays sticky), never
//! a panic.
//!
//! Lock discipline: trace lookup uses sharded maps (read-mostly); all
//! residency bookkeeping — section states, byte ledger, eviction,
//! pin-up — happens under one global ledger mutex, with per-trace
//! section states only ever locked *under* the ledger (so eviction can
//! walk every trace without ordering hazards). Section payload decode
//! takes the trace's `RwLock<Wet>` write lock *outside* the ledger
//! (reserved via a `filling` claim), so a slow decode never stalls
//! other traces. Pin-down is a plain atomic decrement, touching no
//! lock, so a query thread holding a `Wet` read guard can release its
//! pins without lock-order risk. Metrics go to wet-obs as
//! `store.{resident_bytes,pinned_bytes,cold_opens,lazy_decodes,evictions}`.
//! See DESIGN.md §4 decision 11.

use crate::fault::{Io, Vfs};
use crate::query::QueryErr;
use crate::serial::{
    self, SectionSpan, TAG_BIND, TAG_CONF, TAG_EDGL, TAG_ENDW, TAG_NDET, TAG_STAT, TAG_TSEQ, TAG_VALS,
};
use crate::Wet;
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek};
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, Weak};
use std::time::Duration;
use wet_ir::Program;

/// Shard count for the id → trace maps. Small and fixed: contention is
/// on lookups, and lookups are cheap.
const N_SHARDS: usize = 8;

/// Store tuning. Runtime-only, like [`crate::graph::ServeConfig`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Global byte budget for lazily-decoded section payloads across
    /// all open traces (0 = unlimited). `CONF`/`BIND`/`STAT` bytes are
    /// structural and pinned; they are accounted separately as
    /// `store.pinned_bytes`.
    pub budget_bytes: u64,
    /// Prefer mmap-backed section ranges; falls back to `pread`
    /// automatically when mapping fails or is unsupported.
    pub use_mmap: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions { budget_bytes: 0, use_mmap: true }
    }
}

/// Typed store errors; [`kind`](StoreErr::kind) is the stable wire
/// identifier the serve layer forwards.
#[derive(Debug)]
pub enum StoreErr {
    /// Path escapes the configured store root (traversal guard).
    Forbidden(String),
    /// No open trace under that id.
    NotFound(String),
    /// Id already open, or a quota refuses the open.
    Conflict(String),
    /// Container damage: bad framing, CRC failure, undecodable section.
    Corrupt(String),
    /// The trace is quarantined while a background repair runs; safe
    /// to retry after a backoff (`wet query --retries` rides through).
    Repairing(String),
    /// Genuine I/O failure.
    Io(io::Error),
}

impl StoreErr {
    /// Stable wire identifier (`forbidden`, `not_found`, `conflict`,
    /// `corrupt`, `repairing`, `io`).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreErr::Forbidden(_) => "forbidden",
            StoreErr::NotFound(_) => "not_found",
            StoreErr::Conflict(_) => "conflict",
            StoreErr::Corrupt(_) => "corrupt",
            StoreErr::Repairing(_) => "repairing",
            StoreErr::Io(_) => "io",
        }
    }

    /// True when the condition is transient and a client retry is the
    /// right move (currently only [`StoreErr::Repairing`]).
    pub fn is_retriable(&self) -> bool {
        matches!(self, StoreErr::Repairing(_))
    }
}

impl fmt::Display for StoreErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreErr::Forbidden(m) => write!(f, "forbidden: {m}"),
            StoreErr::NotFound(m) => write!(f, "no such trace: {m}"),
            StoreErr::Conflict(m) => write!(f, "conflict: {m}"),
            StoreErr::Corrupt(m) => write!(f, "corrupt trace: {m}"),
            StoreErr::Repairing(m) => write!(f, "repairing: {m}"),
            StoreErr::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl From<StoreErr> for QueryErr {
    fn from(e: StoreErr) -> QueryErr {
        match e {
            // Repair-in-progress is overload-shaped: transient, typed,
            // retriable — exactly the Shed contract.
            StoreErr::Repairing(_) => QueryErr::Shed,
            other => QueryErr::Corrupt(other.to_string()),
        }
    }
}

/// Per-trace health as reported by the `list` op: `ok` unless a decode
/// failure quarantined the trace, `repairing` while the background
/// worker is actively rebuilding it, `failed` once the circuit breaker
/// gave up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceHealth {
    /// Serving normally.
    Ok,
    /// Corruption detected; queued for the repair worker.
    Quarantined,
    /// The repair worker is actively rebuilding it.
    Repairing,
    /// Repair attempts exhausted; the trace stays corrupt until closed
    /// and re-opened (or the file is replaced).
    Failed,
}

impl TraceHealth {
    /// Stable wire string (`ok`, `quarantined`, `repairing`, `failed`).
    pub fn name(self) -> &'static str {
        match self {
            TraceHealth::Ok => "ok",
            TraceHealth::Quarantined => "quarantined",
            TraceHealth::Repairing => "repairing",
            TraceHealth::Failed => "failed",
        }
    }
}

/// Resolves `rel` strictly under `root`: relative, no `..`, no root or
/// prefix components. The serve layer calls this *before* admission so
/// a traversal attempt is rejected early with a typed error.
///
/// # Errors
/// [`StoreErr::Forbidden`] when the path would escape the root.
pub fn resolve_under(root: &Path, rel: &str) -> Result<PathBuf, StoreErr> {
    let p = Path::new(rel);
    if p.as_os_str().is_empty() {
        return Err(StoreErr::Forbidden("empty path".into()));
    }
    for c in p.components() {
        match c {
            Component::Normal(_) | Component::CurDir => {}
            Component::ParentDir => {
                return Err(StoreErr::Forbidden(format!("path `{rel}` escapes the store root")))
            }
            Component::RootDir | Component::Prefix(_) => {
                return Err(StoreErr::Forbidden(format!("absolute path `{rel}` refused")))
            }
        }
    }
    Ok(root.join(p))
}

/// The three lazily-decoded data sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LazySection {
    /// Node timestamp sequences (`TSEQ`).
    Tseq,
    /// Value patterns + unique values (`VALS`).
    Vals,
    /// Coverage sets + edge label streams (`EDGL`).
    Edgl,
}

/// All lazy sections, index order.
pub const LAZY_SECTIONS: [LazySection; 3] = [LazySection::Tseq, LazySection::Vals, LazySection::Edgl];

impl LazySection {
    fn idx(self) -> usize {
        match self {
            LazySection::Tseq => 0,
            LazySection::Vals => 1,
            LazySection::Edgl => 2,
        }
    }

    /// Section tag name, for messages and the `list` op.
    pub fn name(self) -> &'static str {
        match self {
            LazySection::Tseq => "TSEQ",
            LazySection::Vals => "VALS",
            LazySection::Edgl => "EDGL",
        }
    }

    fn tag(self) -> [u8; 4] {
        match self {
            LazySection::Tseq => TAG_TSEQ,
            LazySection::Vals => TAG_VALS,
            LazySection::Edgl => TAG_EDGL,
        }
    }
}

// ---------------------------------------------------------------------
// Byte-range backing: mmap where available, pread otherwise.
// ---------------------------------------------------------------------

#[cfg(unix)]
mod map {
    use std::fs::File;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut c_void, len: usize, prot: c_int, flags: c_int, fd: c_int, off: i64) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    /// A read-only private mapping of a whole file. Same zero-dependency
    /// FFI budget as the serve SIGTERM handler: std links libc anyway.
    pub struct Map {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is immutable shared memory; the raw pointer is only a
    // window onto it.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn of(file: &File) -> Option<Map> {
            let len = file.metadata().ok()?.len();
            let len = usize::try_from(len).ok().filter(|&n| n > 0)?;
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return None;
            }
            Some(Map { ptr: ptr as *mut u8, len })
        }

        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

/// How lazy section bytes are fetched.
enum Backing {
    /// Whole-file read-only mapping; range reads are zero-copy.
    #[cfg(unix)]
    Mmap(map::Map),
    /// Positioned reads against the open file (the portable fallback).
    Pread(File),
}

impl Backing {
    fn open(file: File, prefer_mmap: bool) -> Backing {
        #[cfg(unix)]
        if prefer_mmap {
            if let Some(m) = map::Map::of(&file) {
                return Backing::Mmap(m);
            }
        }
        #[cfg(not(unix))]
        let _ = prefer_mmap;
        Backing::Pread(file)
    }

    /// True when the mmap path is active (reported by `list`).
    fn is_mmap(&self) -> bool {
        match self {
            #[cfg(unix)]
            Backing::Mmap(_) => true,
            Backing::Pread(_) => false,
        }
    }

    /// Bytes `[off, off+len)`, borrowed from the mapping or read into
    /// `scratch`.
    fn range<'a>(&'a self, off: usize, len: usize, scratch: &'a mut Vec<u8>) -> io::Result<&'a [u8]> {
        match self {
            #[cfg(unix)]
            Backing::Mmap(m) => {
                let b = m.bytes();
                if off + len > b.len() {
                    return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "section range past EOF"));
                }
                Ok(&b[off..off + len])
            }
            Backing::Pread(f) => {
                scratch.clear();
                scratch.resize(len, 0);
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    f.read_exact_at(scratch, off as u64)?;
                }
                #[cfg(not(unix))]
                {
                    let mut f = f;
                    f.seek(io::SeekFrom::Start(off as u64))?;
                    f.read_exact(scratch)?;
                }
                Ok(&scratch[..])
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-trace state.
// ---------------------------------------------------------------------

/// Residency state of one lazy section. Only ever locked under the
/// store ledger.
#[derive(Debug, Default)]
struct SectState {
    /// Byte extents in the container; `None` for eagerly-resident
    /// traces (no backing file).
    span: Option<SectionSpan>,
    resident: bool,
    /// Claimed by a thread currently decoding it (bytes reserved).
    filling: bool,
    /// Sticky first-touch failure: CRC mismatch or undecodable payload.
    broken: Option<String>,
    last_touch: u64,
}

/// One open trace: the WET skeleton behind its query lock, the backing
/// file for lazy refills, and the program (if any) for address/slice
/// queries.
pub struct StoredTrace {
    id: String,
    tenant: String,
    wet: RwLock<Wet>,
    program: Option<Program>,
    backing: Option<Backing>,
    /// Source container path, kept so the repair worker can re-read
    /// the file; `None` for eagerly-inserted traces.
    path: Option<PathBuf>,
    /// Pin counts per lazy section: >0 means a query between
    /// [`TraceStore::ensure`] and completion relies on it. Pin-down is
    /// lock-free (see module docs).
    pins: [AtomicU32; 3],
    lazy: Mutex<[SectState; 3]>,
    /// Pinned structural payload bytes (CONF + BIND + STAT).
    pinned_bytes: u64,
}

impl StoredTrace {
    /// The trace id queries route by.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The owning tenant (admission quotas key on this).
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The query lock. Take it shared for snapshot queries, exclusive
    /// for whole-trace/slice queries — after pinning the sections the
    /// query needs via [`TraceStore::ensure`].
    pub fn wet(&self) -> &RwLock<Wet> {
        &self.wet
    }

    /// The program for program-dependent queries, when one was given.
    pub fn program(&self) -> Option<&Program> {
        self.program.as_ref()
    }

    /// True when every section in `needs` is already decoded — the
    /// serve access log's store-hit bit: a query whose sections are
    /// all resident up front will do no container I/O.
    pub fn sections_resident(&self, needs: &[LazySection]) -> bool {
        let lz = lock(&self.lazy);
        needs.iter().all(|s| lz[s.idx()].resident)
    }
}

/// Pins held by an in-flight query; dropping releases them. Keep the
/// guard alive for as long as the query touches the pinned sections.
pub struct PinGuard {
    trace: Arc<StoredTrace>,
    mask: [bool; 3],
}

impl fmt::Debug for PinGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinGuard").field("trace", &self.trace.id).field("mask", &self.mask).finish()
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        for (i, &held) in self.mask.iter().enumerate() {
            if held {
                self.trace.pins[i].fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// One row of [`TraceStore::list`].
#[derive(Debug, Clone)]
pub struct TraceInfo {
    pub id: String,
    pub tenant: String,
    /// True when served lazily from a backing file (false = eager).
    pub lazy: bool,
    /// True when the lazy byte ranges are mmap-backed.
    pub mmap: bool,
    /// Residency per [`LAZY_SECTIONS`] order.
    pub resident: [bool; 3],
    /// Resident lazy payload bytes charged to the budget.
    pub resident_bytes: u64,
    /// Pinned structural bytes (CONF + BIND + STAT).
    pub pinned_bytes: u64,
    /// Health: `Ok` unless quarantined/repairing/failed.
    pub health: TraceHealth,
}

/// Global residency ledger. Single mutex: every byte-accounting or
/// section-state transition happens here, which is what makes the
/// budget a hard bound and eviction race-free.
#[derive(Default)]
struct Ledger {
    /// Resident lazy payload bytes across all traces.
    resident: u64,
    /// Pinned structural bytes across all traces.
    pinned: u64,
    /// LRU clock.
    tick: u64,
    /// Every open trace, for eviction walks. Weak: `close` prunes, and
    /// a straggler entry upgrades to `None` harmlessly.
    traces: Vec<Weak<StoredTrace>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bookkeeping for one unhealthy trace (keyed by id in the healing
/// map). Present = not `Ok`; removed on successful repair or close.
struct HealEntry {
    state: TraceHealth,
    attempts: u32,
}

/// The store: sharded id → trace maps plus the residency ledger. Cheap
/// to clone-share internally: the self-healing repair worker runs on
/// background threads that hold the same inner state.
pub struct TraceStore {
    inner: Arc<StoreInner>,
}

struct StoreInner {
    opts: StoreOptions,
    shards: [RwLock<HashMap<String, Arc<StoredTrace>>>; N_SHARDS],
    ledger: Mutex<Ledger>,
    cold_opens: AtomicU64,
    lazy_decodes: AtomicU64,
    evictions: AtomicU64,
    /// Self-healing switch: when set, a corrupt lazy decode
    /// quarantines the trace and kicks a background repair instead of
    /// answering sticky `Corrupt` forever. Off by default so embedded
    /// stores keep the strict typed-error contract.
    self_heal: AtomicBool,
    /// Unhealthy traces by id. Empty in the happy path; the
    /// `healing_n` mirror makes the per-query check one atomic load.
    healing: Mutex<HashMap<String, HealEntry>>,
    healing_n: AtomicU64,
    quarantines: AtomicU64,
    repairs_ok: AtomicU64,
    repairs_failed: AtomicU64,
    /// The I/O layer container reads go through; a passthrough unless
    /// a `WET_FAULT_*` plan (or a drill via `set_vfs`) armed it.
    vfs: Mutex<Arc<Vfs>>,
}

fn shard_of(id: &str) -> usize {
    // FNV-1a over the id; only distribution matters.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in id.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % N_SHARDS
}

impl StoreInner {
    fn new(opts: StoreOptions) -> StoreInner {
        wet_obs::gauge_set("store.resident_bytes", "", 0);
        wet_obs::gauge_set("store.pinned_bytes", "", 0);
        StoreInner {
            opts,
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            ledger: Mutex::new(Ledger::default()),
            cold_opens: AtomicU64::new(0),
            lazy_decodes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            self_heal: AtomicBool::new(false),
            healing: Mutex::new(HashMap::new()),
            healing_n: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            repairs_ok: AtomicU64::new(0),
            repairs_failed: AtomicU64::new(0),
            vfs: Mutex::new(Arc::new(Vfs::from_env())),
        }
    }

    fn io(&self) -> Arc<Vfs> {
        lock(&self.vfs).clone()
    }

    /// The configured options.
    pub fn options(&self) -> &StoreOptions {
        &self.opts
    }

    /// Resident lazy payload bytes currently charged to the budget.
    pub fn resident_bytes(&self) -> u64 {
        lock(&self.ledger).resident
    }

    /// Pinned structural bytes (CONF + BIND + STAT of lazy traces).
    pub fn pinned_bytes(&self) -> u64 {
        lock(&self.ledger).pinned
    }

    /// Cold opens served so far.
    pub fn cold_opens(&self) -> u64 {
        self.cold_opens.load(Ordering::Relaxed)
    }

    /// Lazy section decodes performed so far.
    pub fn lazy_decodes(&self) -> u64 {
        self.lazy_decodes.load(Ordering::Relaxed)
    }

    /// Sections evicted under budget pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Looks up an open trace by id.
    pub fn get(&self, id: &str) -> Option<Arc<StoredTrace>> {
        self.shards[shard_of(id)]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .cloned()
    }

    /// Number of open traces.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    /// True when no trace is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an already-loaded WET as a fully-resident trace (the
    /// single-trace `wet serve` compatibility path; also the fallback
    /// for v1 containers, which have no section frames to serve
    /// lazily). Its bytes are not charged to the lazy budget.
    ///
    /// # Errors
    /// [`StoreErr::Conflict`] when the id is already open.
    fn insert_resident(
        &self,
        id: &str,
        tenant: &str,
        wet: Wet,
        program: Option<Program>,
    ) -> Result<Arc<StoredTrace>, StoreErr> {
        self.register(self.build_resident(id, tenant, wet, program, None))
    }

    /// Builds a fully-resident trace without registering it (the
    /// repair worker swaps one in atomically instead).
    fn build_resident(
        &self,
        id: &str,
        tenant: &str,
        mut wet: Wet,
        program: Option<Program>,
        path: Option<PathBuf>,
    ) -> Arc<StoredTrace> {
        if self.opts.budget_bytes > 0 && wet.config().serve.cache_budget_bytes == 0 {
            wet.config_mut().serve.cache_budget_bytes = self.opts.budget_bytes;
        }
        Arc::new(StoredTrace {
            id: id.to_string(),
            tenant: tenant.to_string(),
            wet: RwLock::new(wet),
            program,
            backing: None,
            path,
            pins: Default::default(),
            lazy: Mutex::new(std::array::from_fn(|_| SectState {
                span: None,
                resident: true,
                filling: false,
                broken: None,
                last_touch: 0,
            })),
            pinned_bytes: 0,
        })
    }

    /// Opens a `.wetz` lazily: walks the section frame table, decodes
    /// `CONF` + `BIND` + `STAT` (CRC-verified), and leaves
    /// `TSEQ`/`VALS`/`EDGL` as byte ranges against the file. Cost is
    /// O(BIND), independent of trace data volume. v1 containers (no
    /// sections) fall back to an eager load.
    ///
    /// # Errors
    /// [`StoreErr::Conflict`] on a duplicate id, [`StoreErr::Corrupt`]
    /// on container damage in the eagerly-decoded parts,
    /// [`StoreErr::Io`] on file-system failure.
    fn open(
        &self,
        id: &str,
        tenant: &str,
        path: &Path,
        program: Option<Program>,
    ) -> Result<Arc<StoredTrace>, StoreErr> {
        let trace = self.load_lazy(id, tenant, path, program)?;
        self.register(trace)
    }

    /// The body of [`TraceStore::open`] minus registration: builds the
    /// trace without publishing it, so the repair worker can construct
    /// a replacement and swap it in atomically.
    fn load_lazy(
        &self,
        id: &str,
        tenant: &str,
        path: &Path,
        program: Option<Program>,
    ) -> Result<Arc<StoredTrace>, StoreErr> {
        let io = self.io();
        let mut file = io.open(path).map_err(StoreErr::Io)?;
        let mut head = [0u8; 5];
        file.read_exact(&mut head).map_err(|_| StoreErr::Corrupt("file too short".into()))?;
        if &head[..4] != serial::MAGIC {
            return Err(StoreErr::Corrupt("not a WETZ file".into()));
        }
        if head[4] == serial::V1 {
            // No section frames to serve lazily; load it whole.
            file.seek(io::SeekFrom::Start(0)).map_err(StoreErr::Io)?;
            let wet = Wet::read_from(&mut io::BufReader::new(file)).map_err(io_or_corrupt)?;
            self.cold_opens.fetch_add(1, Ordering::Relaxed);
            wet_obs::counter_add("store.cold_opens", "", 1);
            return Ok(self.build_resident(id, tenant, wet, program, Some(path.to_path_buf())));
        }

        let spans = serial::scan_spans(&mut file).map_err(io_or_corrupt)?;
        let tags: Vec<[u8; 4]> = spans.iter().map(|s| s.tag).collect();
        let canonical: Vec<[u8; 4]> = serial::CANONICAL.iter().chain([&TAG_ENDW]).copied().collect();
        if tags != canonical {
            return Err(StoreErr::Corrupt("sections missing, duplicated, or out of order".into()));
        }
        let span_list = spans.clone();
        let span_of = move |tag: [u8; 4]| *span_list.iter().find(|s| s.tag == tag).unwrap();

        let backing = Backing::open(file, self.opts.use_mmap);
        let mut scratch = Vec::new();
        let conf = read_verified(&backing, span_of(TAG_CONF), &mut scratch, &io)?.to_vec();
        let bind = read_verified(&backing, span_of(TAG_BIND), &mut scratch, &io)?.to_vec();
        let ndet_bytes = read_verified(&backing, span_of(TAG_NDET), &mut scratch, &io)?.to_vec();
        let stat = read_verified(&backing, span_of(TAG_STAT), &mut scratch, &io)?.to_vec();

        let (config, tier2) = serial::parse_conf(&conf).map_err(io_or_corrupt)?;
        let bound = serial::parse_bind(&bind).map_err(io_or_corrupt)?;
        // NDET is small (one record per nondeterministic read) and is
        // the replay contract, so it stays resident rather than lazy.
        let ndet = serial::parse_ndet(&ndet_bytes).map_err(io_or_corrupt)?;
        let (sizes, stats) = serial::parse_stat(&stat).map_err(io_or_corrupt)?;
        let pinned_bytes = (span_of(TAG_CONF).payload_len
            + span_of(TAG_BIND).payload_len
            + span_of(TAG_NDET).payload_len
            + span_of(TAG_STAT).payload_len) as u64;

        let mut wet = Wet {
            config,
            nodes: bound.nodes,
            node_index: bound.node_index,
            edges: bound.edges,
            labels: bound.labels,
            in_edges: bound.in_edges,
            out_edges: bound.out_edges,
            first: bound.first,
            last: bound.last,
            sizes,
            stats,
            tier2,
            ndet,
            section_index: Some(spans),
        };
        wet.validate().map_err(StoreErr::Corrupt)?;
        if self.opts.budget_bytes > 0 && wet.config().serve.cache_budget_bytes == 0 {
            // One pool, two layers: the engine's stream cache honors the
            // same budget the store evicts sections under.
            wet.config_mut().serve.cache_budget_bytes = self.opts.budget_bytes;
        }

        let trace = Arc::new(StoredTrace {
            id: id.to_string(),
            tenant: tenant.to_string(),
            wet: RwLock::new(wet),
            program,
            backing: Some(backing),
            path: Some(path.to_path_buf()),
            pins: Default::default(),
            lazy: Mutex::new(std::array::from_fn(|i| SectState {
                span: Some(span_of(LAZY_SECTIONS[i].tag())),
                resident: false,
                filling: false,
                broken: None,
                last_touch: 0,
            })),
            pinned_bytes,
        });
        self.cold_opens.fetch_add(1, Ordering::Relaxed);
        wet_obs::counter_add("store.cold_opens", "", 1);
        Ok(trace)
    }

    fn register(&self, trace: Arc<StoredTrace>) -> Result<Arc<StoredTrace>, StoreErr> {
        let shard = &self.shards[shard_of(&trace.id)];
        {
            let mut m = shard.write().unwrap_or_else(PoisonError::into_inner);
            if m.contains_key(&trace.id) {
                return Err(StoreErr::Conflict(format!("trace `{}` already open", trace.id)));
            }
            m.insert(trace.id.clone(), trace.clone());
        }
        let mut led = lock(&self.ledger);
        led.pinned += trace.pinned_bytes;
        led.traces.push(Arc::downgrade(&trace));
        publish(&led);
        Ok(trace)
    }

    /// Closes a trace: removes it from the store and returns its bytes
    /// to the ledger. In-flight queries holding the `Arc` finish
    /// normally; the memory goes when the last reference drops.
    pub fn close(&self, id: &str) -> Result<(), StoreErr> {
        let trace = {
            let mut m = self.shards[shard_of(id)].write().unwrap_or_else(PoisonError::into_inner);
            m.remove(id).ok_or_else(|| StoreErr::NotFound(id.to_string()))?
        };
        let mut led = lock(&self.ledger);
        let lz = lock(&trace.lazy);
        for st in lz.iter() {
            if let (true, Some(span)) = (st.resident, &st.span) {
                led.resident -= span.payload_len as u64;
            }
        }
        drop(lz);
        led.pinned -= trace.pinned_bytes;
        led.traces.retain(|w| w.upgrade().map(|t| !Arc::ptr_eq(&t, &trace)).unwrap_or(false));
        publish(&led);
        drop(led);
        // Closing an unhealthy trace abandons its repair: the worker
        // sees the entry gone and exits.
        self.clear_heal(id);
        Ok(())
    }

    /// Every open trace, sorted by id (deterministic `list` responses).
    pub fn list(&self) -> Vec<TraceInfo> {
        let mut traces: Vec<Arc<StoredTrace>> = Vec::new();
        for shard in &self.shards {
            traces.extend(shard.read().unwrap_or_else(PoisonError::into_inner).values().cloned());
        }
        traces.sort_by(|a, b| a.id.cmp(&b.id));
        let health: HashMap<String, TraceHealth> = {
            let heal = lock(&self.healing);
            heal.iter().map(|(id, e)| (id.clone(), e.state)).collect()
        };
        let led = lock(&self.ledger);
        let infos = traces
            .iter()
            .map(|t| {
                let lz = lock(&t.lazy);
                let mut resident = [false; 3];
                let mut bytes = 0u64;
                for (i, st) in lz.iter().enumerate() {
                    resident[i] = st.resident;
                    if st.resident {
                        if let Some(sp) = &st.span {
                            bytes += sp.payload_len as u64;
                        }
                    }
                }
                TraceInfo {
                    id: t.id.clone(),
                    tenant: t.tenant.clone(),
                    lazy: t.backing.is_some(),
                    mmap: t.backing.as_ref().map(Backing::is_mmap).unwrap_or(false),
                    resident,
                    resident_bytes: bytes,
                    pinned_bytes: t.pinned_bytes,
                    health: health.get(&t.id).copied().unwrap_or(TraceHealth::Ok),
                }
            })
            .collect();
        drop(led);
        infos
    }

    /// Makes `needs` resident and pins them for the returned guard's
    /// lifetime. Filling happens at section granularity (CRC check +
    /// decode into the skeleton); evicting the least-recently-touched
    /// unpinned sections first keeps resident bytes under the budget.
    ///
    /// # Errors
    /// [`StoreErr::Corrupt`] when a needed section fails its CRC or
    /// decode (sticky — later touches fail the same way without
    /// re-reading). With self-healing enabled, corruption instead
    /// quarantines the trace and every touch until repair completes
    /// gets the retriable [`StoreErr::Repairing`].
    fn ensure(
        self: &Arc<Self>,
        trace: &Arc<StoredTrace>,
        needs: &[LazySection],
    ) -> Result<PinGuard, StoreErr> {
        self.heal_gate(&trace.id)?;
        let mut guard = PinGuard { trace: trace.clone(), mask: [false; 3] };
        enum Step {
            Done,
            Wait,
            Fill(LazySection, SectionSpan),
        }
        loop {
            let step = {
                let mut led = lock(&self.ledger);
                let mut step = Step::Done;
                {
                    let mut lz = lock(&trace.lazy);
                    for &s in needs {
                        let st = &mut lz[s.idx()];
                        if let Some(msg) = &st.broken {
                            return Err(self.corrupt_section(trace, s, msg.clone()));
                        }
                        if st.resident {
                            st.last_touch = led.tick;
                            led.tick += 1;
                            if !guard.mask[s.idx()] {
                                trace.pins[s.idx()].fetch_add(1, Ordering::SeqCst);
                                guard.mask[s.idx()] = true;
                            }
                            continue;
                        }
                        if st.filling {
                            step = Step::Wait;
                            break;
                        }
                        let Some(span) = st.span else {
                            return Err(StoreErr::Corrupt(format!(
                                "{}: {} section absent",
                                trace.id,
                                s.name()
                            )));
                        };
                        st.filling = true;
                        step = Step::Fill(s, span);
                        break;
                    }
                }
                if let Step::Fill(_, span) = &step {
                    // Reserve the bytes before decoding, evicting LRU
                    // victims first so the budget holds at all times.
                    self.evict_for(&mut led, span.payload_len as u64);
                    led.resident += span.payload_len as u64;
                    publish(&led);
                }
                step
            };
            match step {
                Step::Done => return Ok(guard),
                Step::Wait => {
                    // Another thread is decoding a section we need; its
                    // finish transitions the state under the ledger.
                    std::thread::sleep(Duration::from_micros(200));
                }
                Step::Fill(s, span) => {
                    let filled = self.decode_section(trace, s, span);
                    let mut led = lock(&self.ledger);
                    let mut lz = lock(&trace.lazy);
                    let st = &mut lz[s.idx()];
                    st.filling = false;
                    match filled {
                        Ok(()) => {
                            st.resident = true;
                            st.last_touch = led.tick;
                            led.tick += 1;
                            if !guard.mask[s.idx()] {
                                trace.pins[s.idx()].fetch_add(1, Ordering::SeqCst);
                                guard.mask[s.idx()] = true;
                            }
                            self.lazy_decodes.fetch_add(1, Ordering::Relaxed);
                            wet_obs::counter_add("store.lazy_decodes", "", 1);
                            publish(&led);
                        }
                        Err(e) => {
                            let msg = e.to_string();
                            st.broken = Some(msg.clone());
                            led.resident -= span.payload_len as u64;
                            publish(&led);
                            return Err(self.corrupt_section(trace, s, msg));
                        }
                    }
                }
            }
        }
    }

    /// Reads, CRC-checks, and decodes one section into the trace's WET.
    /// Runs *outside* the ledger; the `filling` claim keeps eviction and
    /// concurrent fills away.
    fn decode_section(&self, trace: &StoredTrace, s: LazySection, span: SectionSpan) -> io::Result<()> {
        let backing = trace
            .backing
            .as_ref()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no backing file"))?;
        let mut scratch = Vec::new();
        let payload = read_verified(backing, span, &mut scratch, &self.io()).map_err(|e| match e {
            StoreErr::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        })?;
        let mut wet = trace.wet.write().unwrap_or_else(PoisonError::into_inner);
        let wet = &mut *wet;
        match s {
            LazySection::Tseq => serial::fill_tseq(&mut wet.nodes, payload),
            LazySection::Vals => serial::fill_vals(&mut wet.nodes, payload),
            LazySection::Edgl => serial::fill_edgl(&mut wet.nodes, &mut wet.labels, payload),
        }
    }

    /// Evicts least-recently-touched unpinned sections until `need`
    /// more bytes fit under the budget. Called under the ledger. When
    /// nothing is evictable (everything pinned), the budget overshoots
    /// rather than deadlocking a query against its own pins.
    fn evict_for(&self, led: &mut Ledger, need: u64) {
        let budget = self.opts.budget_bytes;
        if budget == 0 {
            return;
        }
        while led.resident + need > budget {
            let mut victim: Option<(Arc<StoredTrace>, usize, u64)> = None;
            for w in &led.traces {
                let Some(t) = w.upgrade() else { continue };
                if t.backing.is_none() {
                    continue; // eager traces cannot be refilled
                }
                let lz = lock(&t.lazy);
                for (i, st) in lz.iter().enumerate() {
                    if st.resident
                        && !st.filling
                        && t.pins[i].load(Ordering::SeqCst) == 0
                        && victim.as_ref().map(|&(_, _, tt)| st.last_touch < tt).unwrap_or(true)
                    {
                        victim = Some((t.clone(), i, st.last_touch));
                    }
                }
            }
            let Some((t, i, touch)) = victim else { break };
            // The query lock may be held briefly by a concurrent fill
            // on another section of the same trace; skip rather than
            // block the whole ledger on it.
            let Ok(mut wet) = t.wet.try_write() else { break };
            let mut lz = lock(&t.lazy);
            let st = &mut lz[i];
            // Re-check under the locks: the state may have moved.
            if !(st.resident && !st.filling && t.pins[i].load(Ordering::SeqCst) == 0 && st.last_touch == touch)
            {
                continue;
            }
            let wet = &mut *wet;
            match LAZY_SECTIONS[i] {
                LazySection::Tseq => serial::mark_tseq_lost(&mut wet.nodes),
                LazySection::Vals => serial::mark_vals_lost(&mut wet.nodes),
                LazySection::Edgl => serial::mark_edgl_lost(&mut wet.nodes, &mut wet.labels),
            }
            st.resident = false;
            led.resident -= st.span.as_ref().map(|sp| sp.payload_len as u64).unwrap_or(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            wet_obs::counter_add("store.evictions", "", 1);
        }
        publish(led);
    }

    // -----------------------------------------------------------------
    // Self-healing: quarantine → background repair → re-admission.
    // -----------------------------------------------------------------

    /// Per-query health check. One atomic load in the happy path; a
    /// map lookup only while at least one trace is unhealthy.
    fn heal_gate(&self, id: &str) -> Result<(), StoreErr> {
        if self.healing_n.load(Ordering::Acquire) == 0 {
            return Ok(());
        }
        let heal = lock(&self.healing);
        match heal.get(id).map(|e| e.state) {
            None | Some(TraceHealth::Ok) => Ok(()),
            Some(TraceHealth::Quarantined) | Some(TraceHealth::Repairing) => {
                Err(StoreErr::Repairing(format!(
                    "trace `{id}` is quarantined while a repair runs; retry shortly"
                )))
            }
            Some(TraceHealth::Failed) => Err(StoreErr::Corrupt(format!(
                "trace `{id}`: repair attempts exhausted; close and re-open after replacing the file"
            ))),
        }
    }

    /// Shapes a section-corruption error. Without self-healing this is
    /// the sticky typed `Corrupt` of PR 6; with it, the trace is
    /// quarantined and callers (including the one that tripped the
    /// corruption) get the retriable `Repairing` so `--retries` rides
    /// through the repair window. Called with the ledger held — touches
    /// only the healing lock.
    fn corrupt_section(
        self: &Arc<Self>,
        trace: &Arc<StoredTrace>,
        s: LazySection,
        msg: String,
    ) -> StoreErr {
        if self.self_heal.load(Ordering::Acquire) && trace.path.is_some() {
            self.quarantine(trace);
            return StoreErr::Repairing(format!(
                "trace `{}`: {} section corrupt ({msg}); quarantined for repair, retry shortly",
                trace.id,
                s.name()
            ));
        }
        StoreErr::Corrupt(format!("{}: {} section: {msg}", trace.id, s.name()))
    }

    /// Marks the trace unhealthy and kicks a background repair worker.
    /// Idempotent: a trace already queued (or parked as `Failed`) is
    /// left alone. Safe to call with the ledger held — takes only the
    /// healing lock, and the worker thread starts by sleeping.
    fn quarantine(self: &Arc<Self>, trace: &Arc<StoredTrace>) {
        let id = trace.id.clone();
        {
            let mut heal = lock(&self.healing);
            if heal.contains_key(&id) {
                return;
            }
            heal.insert(id.clone(), HealEntry { state: TraceHealth::Quarantined, attempts: 0 });
            self.healing_n.store(heal.len() as u64, Ordering::Release);
        }
        self.quarantines.fetch_add(1, Ordering::Relaxed);
        wet_obs::counter_add("store.quarantines", "", 1);
        let inner = self.clone();
        std::thread::spawn(move || inner.repair_worker(&id));
    }

    /// Removes a healing entry (repair finished or trace closed).
    fn clear_heal(&self, id: &str) {
        let mut heal = lock(&self.healing);
        heal.remove(id);
        self.healing_n.store(heal.len() as u64, Ordering::Release);
    }

    /// Background repair loop: re-reads the container through the
    /// salvaging decoder under capped exponential backoff and swaps a
    /// fresh trace in atomically. The attempt cap is the per-trace
    /// circuit breaker — exhausting it parks the trace as `Failed`
    /// (terminal until `close`). On the final attempt an unclean
    /// salvage is still installed as a degraded resident trace, so the
    /// store answers (with `Unavailable` placeholders) rather than
    /// refusing forever.
    fn repair_worker(self: Arc<Self>, id: &str) {
        const MAX_ATTEMPTS: u32 = 6;
        let mut delay = Duration::from_millis(10);
        for attempt in 1..=MAX_ATTEMPTS {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(400));
            {
                let mut heal = lock(&self.healing);
                let Some(entry) = heal.get_mut(id) else {
                    return; // closed meanwhile — repair abandoned
                };
                entry.state = TraceHealth::Repairing;
                entry.attempts = attempt;
            }
            let Some(old) = self.get(id) else {
                self.clear_heal(id);
                return;
            };
            let Some(path) = old.path.clone() else {
                break; // eagerly-inserted: nothing on disk to re-read
            };
            if self.try_repair(&old, &path, attempt == MAX_ATTEMPTS) {
                self.clear_heal(id);
                self.repairs_ok.fetch_add(1, Ordering::Relaxed);
                wet_obs::counter_add("store.repairs_ok", "", 1);
                return;
            }
        }
        let mut heal = lock(&self.healing);
        if let Some(entry) = heal.get_mut(id) {
            entry.state = TraceHealth::Failed;
        }
        drop(heal);
        self.repairs_failed.fetch_add(1, Ordering::Relaxed);
        wet_obs::counter_add("store.repairs_failed", "", 1);
    }

    /// One repair attempt. True when a replacement trace was installed:
    /// a clean container re-opens lazily exactly like `open`; on the
    /// final attempt an unclean salvage installs the degraded WET
    /// (damaged sections as `Unavailable`) as a resident trace. The
    /// file itself is never rewritten in-process — that stays the
    /// operator's `wet fsck --repair` call (DESIGN.md §4 decision 14).
    fn try_repair(self: &Arc<Self>, old: &Arc<StoredTrace>, path: &Path, last: bool) -> bool {
        let io = self.io();
        let Ok((wet, report)) = Wet::read_salvaging_path(path, io.as_ref()) else {
            return false;
        };
        if report.is_clean() {
            match self.load_lazy(&old.id, &old.tenant, path, old.program.clone()) {
                Ok(fresh) => return self.swap_in(old, fresh),
                Err(_) => return false,
            }
        }
        if last {
            let fresh =
                self.build_resident(&old.id, &old.tenant, wet, old.program.clone(), Some(path.to_path_buf()));
            return self.swap_in(old, fresh);
        }
        false
    }

    /// Atomically replaces `old` with `fresh` in the shard map and
    /// rebalances the ledger (close + register, without the window
    /// where the id is absent). False when `old` is no longer the
    /// published entry — someone closed or replaced it concurrently,
    /// and the repair result is discarded.
    fn swap_in(&self, old: &Arc<StoredTrace>, fresh: Arc<StoredTrace>) -> bool {
        let shard = &self.shards[shard_of(&old.id)];
        {
            let mut m = shard.write().unwrap_or_else(PoisonError::into_inner);
            match m.get(&old.id) {
                Some(cur) if Arc::ptr_eq(cur, old) => {}
                _ => return false,
            }
            m.insert(old.id.clone(), fresh.clone());
        }
        let mut led = lock(&self.ledger);
        let lz = lock(&old.lazy);
        for st in lz.iter() {
            if let (true, Some(span)) = (st.resident, &st.span) {
                led.resident -= span.payload_len as u64;
            }
        }
        drop(lz);
        led.pinned -= old.pinned_bytes;
        led.traces.retain(|w| w.upgrade().map(|t| !Arc::ptr_eq(&t, old)).unwrap_or(false));
        led.pinned += fresh.pinned_bytes;
        led.traces.push(Arc::downgrade(&fresh));
        publish(&led);
        true
    }
}

impl TraceStore {
    /// An empty store with the given options.
    pub fn new(opts: StoreOptions) -> TraceStore {
        TraceStore { inner: Arc::new(StoreInner::new(opts)) }
    }

    /// Turns self-healing on or off. Off (the default) keeps PR 6's
    /// strict contract: corruption is a sticky typed `Corrupt`. On —
    /// what `wet serve` runs with — corruption quarantines the trace,
    /// a background worker repairs it, and queries meanwhile get the
    /// retriable [`StoreErr::Repairing`].
    pub fn set_self_heal(&self, on: bool) {
        self.inner.self_heal.store(on, Ordering::Release);
    }

    /// Replaces the I/O layer (fault-injection drills).
    pub fn set_vfs(&self, vfs: Arc<Vfs>) {
        *lock(&self.inner.vfs) = vfs;
    }

    /// The configured options.
    pub fn options(&self) -> &StoreOptions {
        self.inner.options()
    }

    /// Resident lazy payload bytes currently charged to the budget.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.resident_bytes()
    }

    /// Pinned structural bytes (CONF + BIND + STAT of lazy traces).
    pub fn pinned_bytes(&self) -> u64 {
        self.inner.pinned_bytes()
    }

    /// Cold opens served so far.
    pub fn cold_opens(&self) -> u64 {
        self.inner.cold_opens()
    }

    /// Lazy section decodes performed so far.
    pub fn lazy_decodes(&self) -> u64 {
        self.inner.lazy_decodes()
    }

    /// Sections evicted under budget pressure so far.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// Traces quarantined so far.
    pub fn quarantines(&self) -> u64 {
        self.inner.quarantines.load(Ordering::Relaxed)
    }

    /// Background repairs that re-admitted a trace.
    pub fn repairs_ok(&self) -> u64 {
        self.inner.repairs_ok.load(Ordering::Relaxed)
    }

    /// Repairs whose circuit breaker tripped (trace parked `Failed`).
    pub fn repairs_failed(&self) -> u64 {
        self.inner.repairs_failed.load(Ordering::Relaxed)
    }

    /// Current health of a trace (`Ok` when not in the healing map).
    pub fn health(&self, id: &str) -> TraceHealth {
        let heal = lock(&self.inner.healing);
        heal.get(id).map(|e| e.state).unwrap_or(TraceHealth::Ok)
    }

    /// Looks up an open trace by id.
    pub fn get(&self, id: &str) -> Option<Arc<StoredTrace>> {
        self.inner.get(id)
    }

    /// Number of open traces.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no trace is open.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Inserts an already-loaded WET as a fully-resident trace (the
    /// single-trace `wet serve` compatibility path; also the fallback
    /// for v1 containers, which have no section frames to serve
    /// lazily). Its bytes are not charged to the lazy budget.
    ///
    /// # Errors
    /// [`StoreErr::Conflict`] when the id is already open.
    pub fn insert_resident(
        &self,
        id: &str,
        tenant: &str,
        wet: Wet,
        program: Option<Program>,
    ) -> Result<Arc<StoredTrace>, StoreErr> {
        self.inner.insert_resident(id, tenant, wet, program)
    }

    /// Opens a `.wetz` lazily; see [`StoreInner::load_lazy`]'s cost
    /// model (O(BIND), independent of trace data volume).
    ///
    /// # Errors
    /// [`StoreErr::Conflict`] on a duplicate id, [`StoreErr::Corrupt`]
    /// on container damage in the eagerly-decoded parts,
    /// [`StoreErr::Io`] on file-system failure.
    pub fn open(
        &self,
        id: &str,
        tenant: &str,
        path: &Path,
        program: Option<Program>,
    ) -> Result<Arc<StoredTrace>, StoreErr> {
        self.inner.open(id, tenant, path, program)
    }

    /// Closes a trace: removes it from the store and returns its bytes
    /// to the ledger. In-flight queries holding the `Arc` finish
    /// normally; the memory goes when the last reference drops.
    pub fn close(&self, id: &str) -> Result<(), StoreErr> {
        self.inner.close(id)
    }

    /// Every open trace, sorted by id (deterministic `list` responses).
    pub fn list(&self) -> Vec<TraceInfo> {
        self.inner.list()
    }

    /// Makes `needs` resident and pins them for the returned guard's
    /// lifetime; see [`StoreInner::ensure`].
    ///
    /// # Errors
    /// [`StoreErr::Corrupt`] on section corruption (sticky), or — with
    /// self-healing on — the retriable [`StoreErr::Repairing`] while
    /// the background worker rebuilds the trace.
    pub fn ensure(
        &self,
        trace: &Arc<StoredTrace>,
        needs: &[LazySection],
    ) -> Result<PinGuard, StoreErr> {
        self.inner.ensure(trace, needs)
    }
}

/// Pushes ledger totals to wet-obs (current + running peak).
fn publish(led: &Ledger) {
    wet_obs::gauge_set("store.resident_bytes", "", led.resident as i64);
    wet_obs::gauge_max("store.resident_bytes", "peak", led.resident as i64);
    wet_obs::gauge_set("store.pinned_bytes", "", led.pinned as i64);
}

/// Reads one section's payload and verifies its CRC (which covers tag +
/// length prefix + payload, recomputed from the span metadata).
fn read_verified<'a>(
    backing: &'a Backing,
    span: SectionSpan,
    scratch: &'a mut Vec<u8>,
    io: &Vfs,
) -> Result<&'a [u8], StoreErr> {
    // The mmap path never issues a read syscall, so the fault plan
    // gates here: every section fetch counts as one read op no matter
    // which backing serves it.
    io.read_gate().map_err(StoreErr::Io)?;
    let whole = backing
        .range(span.payload_start, span.payload_len + 4, scratch)
        .map_err(StoreErr::Io)?;
    let (payload, crcb) = whole.split_at(span.payload_len);
    let mut c = crate::crc::Crc32::new();
    c.update(&span.tag);
    c.update(&(span.payload_len as u64).to_le_bytes());
    c.update(payload);
    if c.finish() != u32::from_le_bytes(crcb.try_into().unwrap()) {
        return Err(StoreErr::Corrupt(format!(
            "{} checksum mismatch",
            String::from_utf8_lossy(&span.tag)
        )));
    }
    Ok(payload)
}

/// Real I/O failures stay [`StoreErr::Io`]; decode problems become
/// [`StoreErr::Corrupt`].
fn io_or_corrupt(e: io::Error) -> StoreErr {
    match e.kind() {
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => StoreErr::Corrupt(e.to_string()),
        _ => StoreErr::Io(e),
    }
}

/// The sections a serve op touches — the contract between the protocol
/// layer and the store. Control-flow traces need timestamps; value and
/// address traces additionally read value streams; slices chase
/// dependence labels too.
pub fn sections_for_op(op: &str) -> &'static [LazySection] {
    match op {
        "cf_trace" => &[LazySection::Tseq],
        "value_trace" | "address_trace" => &[LazySection::Tseq, LazySection::Vals],
        "slice" => &LAZY_SECTIONS,
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query;
    use crate::WetConfig;

    fn saved_trace(dir: &Path, name: &str, input: i64) -> PathBuf {
        let p = crate::tests::looping_program();
        let (mut wet, _) = crate::tests::build_wet(&p, &[input], WetConfig::default());
        wet.compress();
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, &bytes).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("wet-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn lazy_open_matches_eager_queries() {
        let dir = tmpdir("lazy");
        let path = saved_trace(&dir, "a.wetz", 70);

        let bytes = std::fs::read(&path).unwrap();
        let mut eager = Wet::read_from(&mut bytes.as_slice()).unwrap();
        let expect_cf = query::cf_trace_forward(&mut eager).unwrap();

        let store = TraceStore::new(StoreOptions::default());
        let t = store.open("a", "ten", &path, None).unwrap();
        assert_eq!(store.resident_bytes(), 0, "no lazy bytes before first touch");
        let _pin = store.ensure(&t, &[LazySection::Tseq]).unwrap();
        assert!(store.resident_bytes() > 0);
        let mut wet = t.wet().write().unwrap();
        let got = query::cf_trace_forward(&mut wet).unwrap();
        assert_eq!(got, expect_cf);
        assert_eq!(store.lazy_decodes(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_resident_bytes_under_budget() {
        let dir = tmpdir("evict");
        let mut paths = Vec::new();
        for i in 0..4 {
            paths.push(saved_trace(&dir, &format!("t{i}.wetz"), 60 + i as i64 * 7));
        }
        // Budget fits roughly one trace's lazy sections at a time.
        let one = {
            let bytes = std::fs::read(&paths[0]).unwrap();
            let spans = crate::section_spans(&bytes).unwrap();
            spans
                .iter()
                .filter(|s| [TAG_TSEQ, TAG_VALS, TAG_EDGL].contains(&s.tag))
                .map(|s| s.payload_len as u64)
                .sum::<u64>()
        };
        let budget = one + one / 2;
        let store = TraceStore::new(StoreOptions { budget_bytes: budget, use_mmap: true });
        let mut traces = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            traces.push(store.open(&format!("t{i}"), "ten", p, None).unwrap());
        }
        for round in 0..2 {
            for t in &traces {
                let pin = store.ensure(t, &[LazySection::Tseq, LazySection::Vals]).unwrap();
                assert!(
                    store.resident_bytes() <= budget,
                    "round {round}: resident {} > budget {budget}",
                    store.resident_bytes()
                );
                let wet = t.wet().read().unwrap();
                let stmt = wet_ir::StmtId(0);
                let _ = query::engine::value_trace(&wet, stmt, 1).unwrap();
                drop(wet);
                drop(pin);
            }
        }
        assert!(store.evictions() > 0, "budget pressure must evict");
        assert!(store.len() == 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc_bad_lazy_section_is_typed_corrupt_on_first_touch() {
        let dir = tmpdir("crc");
        let path = saved_trace(&dir, "bad.wetz", 70);
        let mut bytes = std::fs::read(&path).unwrap();
        let spans = crate::section_spans(&bytes).unwrap();
        let vals = spans.iter().find(|s| s.tag == TAG_VALS).unwrap();
        bytes[vals.payload_start + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let store = TraceStore::new(StoreOptions::default());
        // Open succeeds: CONF/BIND are intact, damage is in a lazy section.
        let t = store.open("bad", "ten", &path, None).unwrap();
        let err = store.ensure(&t, &[LazySection::Vals]).unwrap_err();
        assert!(matches!(err, StoreErr::Corrupt(_)), "{err}");
        // Sticky: the second touch fails identically without re-reading.
        let err2 = store.ensure(&t, &[LazySection::Vals]).unwrap_err();
        assert!(matches!(err2, StoreErr::Corrupt(_)));
        // Undamaged sections still serve.
        let _pin = store.ensure(&t, &[LazySection::Tseq]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traversal_guard_rejects_escapes() {
        let root = Path::new("/srv/traces");
        assert!(resolve_under(root, "a.wetz").is_ok());
        assert!(resolve_under(root, "sub/dir/a.wetz").is_ok());
        for bad in ["../a.wetz", "a/../../b", "/etc/passwd", ""] {
            let e = resolve_under(root, bad).unwrap_err();
            assert!(matches!(e, StoreErr::Forbidden(_)), "{bad}");
        }
    }

    #[test]
    fn pread_fallback_matches_mmap() {
        let dir = tmpdir("pread");
        let path = saved_trace(&dir, "p.wetz", 50);
        let a = TraceStore::new(StoreOptions { budget_bytes: 0, use_mmap: true });
        let b = TraceStore::new(StoreOptions { budget_bytes: 0, use_mmap: false });
        let ta = a.open("p", "", &path, None).unwrap();
        let tb = b.open("p", "", &path, None).unwrap();
        let _pa = a.ensure(&ta, &LAZY_SECTIONS).unwrap();
        let _pb = b.ensure(&tb, &LAZY_SECTIONS).unwrap();
        let mut wa = ta.wet().write().unwrap();
        let mut wb = tb.wet().write().unwrap();
        assert_eq!(
            query::cf_trace_forward(&mut wa).unwrap(),
            query::cf_trace_forward(&mut wb).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn wait_health(store: &TraceStore, id: &str, want: TraceHealth) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if store.health(id) == want {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    #[test]
    fn self_heal_quarantines_repairs_and_readmits() {
        let dir = tmpdir("heal");
        let path = saved_trace(&dir, "h.wetz", 70);
        let good = std::fs::read(&path).unwrap();
        let mut bytes = good.clone();
        let spans = crate::section_spans(&bytes).unwrap();
        let vals = spans.iter().find(|s| s.tag == TAG_VALS).unwrap();
        bytes[vals.payload_start + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let store = TraceStore::new(StoreOptions::default());
        store.set_self_heal(true);
        let t = store.open("h", "ten", &path, None).unwrap();
        // The corrupting touch itself gets the retriable error...
        let err = store.ensure(&t, &[LazySection::Vals]).unwrap_err();
        assert!(matches!(err, StoreErr::Repairing(_)), "{err}");
        assert!(err.is_retriable());
        // ...and so does every touch during the repair window (not the
        // sticky Corrupt of the non-healing store).
        let err2 = store.ensure(&t, &[LazySection::Tseq]).unwrap_err();
        assert!(matches!(err2, StoreErr::Repairing(_)), "{err2}");
        let row = &store.list()[0];
        assert!(
            matches!(row.health, TraceHealth::Quarantined | TraceHealth::Repairing),
            "{:?}",
            row.health
        );
        assert_eq!(store.quarantines(), 1);

        // Restore the container; the background worker re-admits.
        std::fs::write(&path, &good).unwrap();
        assert!(wait_health(&store, "h", TraceHealth::Ok), "repair never completed");
        assert_eq!(store.repairs_ok(), 1);
        let t = store.get("h").unwrap();
        let _pin = store.ensure(&t, &LAZY_SECTIONS).unwrap();
        let mut wet = t.wet().write().unwrap();
        let repaired = query::cf_trace_forward(&mut wet).unwrap();
        drop(wet);

        // Byte-identical to a store that never saw the fault.
        let clean = TraceStore::new(StoreOptions::default());
        let tc = clean.open("h", "ten", &path, None).unwrap();
        let _pc = clean.ensure(&tc, &LAZY_SECTIONS).unwrap();
        let mut wc = tc.wet().write().unwrap();
        assert_eq!(repaired, query::cf_trace_forward(&mut wc).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_heal_circuit_breaker_parks_failed() {
        let dir = tmpdir("breaker");
        let path = saved_trace(&dir, "f.wetz", 70);
        let mut bytes = std::fs::read(&path).unwrap();
        let spans = crate::section_spans(&bytes).unwrap();
        let vals = spans.iter().find(|s| s.tag == TAG_VALS).unwrap();
        bytes[vals.payload_start + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let store = TraceStore::new(StoreOptions::default());
        store.set_self_heal(true);
        let t = store.open("f", "ten", &path, None).unwrap();
        let err = store.ensure(&t, &[LazySection::Vals]).unwrap_err();
        assert!(matches!(err, StoreErr::Repairing(_)), "{err}");
        // Make every repair attempt fail outright: not even salvage can
        // assemble a WET from a destroyed container.
        std::fs::write(&path, b"not a wetz file at all").unwrap();
        assert!(wait_health(&store, "f", TraceHealth::Failed), "breaker never tripped");
        assert_eq!(store.repairs_failed(), 1);
        // Failed is terminal and non-retriable.
        let err = store.ensure(&t, &[LazySection::Vals]).unwrap_err();
        assert!(matches!(err, StoreErr::Corrupt(_)), "{err}");
        assert!(!err.is_retriable());
        assert_eq!(store.list()[0].health, TraceHealth::Failed);
        // Close clears the breaker; the id is reusable.
        store.close("f").unwrap();
        assert_eq!(store.health("f"), TraceHealth::Ok);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_heal_persistent_corruption_installs_degraded_trace() {
        let dir = tmpdir("degraded");
        let path = saved_trace(&dir, "d.wetz", 70);
        let mut bytes = std::fs::read(&path).unwrap();
        let spans = crate::section_spans(&bytes).unwrap();
        let vals = spans.iter().find(|s| s.tag == TAG_VALS).unwrap();
        bytes[vals.payload_start + 3] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let store = TraceStore::new(StoreOptions::default());
        store.set_self_heal(true);
        let t = store.open("d", "ten", &path, None).unwrap();
        let err = store.ensure(&t, &[LazySection::Vals]).unwrap_err();
        assert!(matches!(err, StoreErr::Repairing(_)), "{err}");
        // The corruption never clears; the final attempt installs the
        // salvaged WET (damaged section as Unavailable) so the trace
        // serves degraded instead of refusing forever.
        assert!(wait_health(&store, "d", TraceHealth::Ok), "degraded install never happened");
        assert_eq!(store.repairs_ok(), 1);
        let fresh = store.get("d").unwrap();
        assert!(!Arc::ptr_eq(&fresh, &t), "expected a replacement trace");
        // The degraded replacement is eagerly resident; ensure is a
        // no-op success and TSEQ-only queries still answer.
        let _pin = store.ensure(&fresh, &LAZY_SECTIONS).unwrap();
        let mut wet = fresh.wet().write().unwrap();
        assert!(query::cf_trace_forward(&mut wet).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
