//! Integrity reporting for `.wetz` containers.
//!
//! Both the strict reader ([`crate::Wet::read_from`]) and the salvage
//! reader ([`crate::Wet::read_salvaging`]) drive the same section
//! scanner; what they do with damage differs. The scanner's findings
//! are captured in a [`FsckReport`]: one [`SectionReport`] per section
//! encountered (or expected but missing), plus file-level problems that
//! are not attributable to a single section. `wet-cli fsck` renders the
//! report; the fault-injection harness asserts on it.

use std::fmt;

/// Integrity status of one container section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionStatus {
    /// Checksum verified and (where parsed) payload well-formed.
    Ok,
    /// Stored CRC-32 does not match the section bytes.
    BadCrc,
    /// The file ended before the section (or its checksum) did.
    Truncated,
    /// Checksum verified but the payload does not parse — or the
    /// section header itself is implausible (e.g. an inflated length
    /// prefix larger than any real section).
    Malformed(String),
    /// A section the format requires was not present at all.
    Missing,
}

impl SectionStatus {
    /// True only for [`SectionStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, SectionStatus::Ok)
    }
}

impl fmt::Display for SectionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionStatus::Ok => write!(f, "ok"),
            SectionStatus::BadCrc => write!(f, "bad checksum"),
            SectionStatus::Truncated => write!(f, "truncated"),
            SectionStatus::Malformed(why) => write!(f, "malformed ({why})"),
            SectionStatus::Missing => write!(f, "missing"),
        }
    }
}

/// Per-section fsck result.
#[derive(Debug, Clone)]
pub struct SectionReport {
    /// Four-character section tag (`CONF`, `BIND`, …), lossily decoded.
    pub tag: String,
    /// Payload length claimed by the section header.
    pub len: u64,
    /// What the scanner found.
    pub status: SectionStatus,
}

/// Full integrity report for one `.wetz` file.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Container version byte (1 = legacy un-checksummed, 2 = sectioned).
    pub version: u8,
    /// One entry per section encountered, in file order, plus `Missing`
    /// entries for required sections that never appeared.
    pub sections: Vec<SectionReport>,
    /// Set when no usable WET could be assembled at all — bad magic,
    /// unsupported version, or the structure (`BIND`) section lost.
    pub fatal: Option<String>,
    /// A file-level structural problem not tied to one section's
    /// checksum: sections out of order or duplicated, a bad trailer
    /// count, trailing bytes, or a failed post-decode validation.
    /// Salvage may still succeed; the strict reader rejects the file.
    pub structure_error: Option<String>,
    /// Label sequences whose bytes were readable (their section's
    /// checksum verified and payload parsed).
    pub seqs_recovered: u64,
    /// Label sequences lost to damaged sections and replaced by
    /// [`crate::Seq::Unavailable`] placeholders during salvage.
    pub seqs_lost: u64,
}

impl FsckReport {
    /// Sections the scanner examined (including ones found missing).
    pub fn sections_checked(&self) -> u64 {
        self.sections.len() as u64
    }

    /// Sections that failed — anything other than [`SectionStatus::Ok`].
    pub fn sections_corrupt(&self) -> u64 {
        self.sections.iter().filter(|s| !s.status.is_ok()).count() as u64
    }

    /// True when the container itself is sound: every section checks
    /// out and there is no fatal or structural problem. A clean file
    /// may still carry `Unavailable` sequences (`seqs_lost > 0`) if it
    /// was produced by `fsck --repair` — the *container* is intact even
    /// though some data could not be saved from the original.
    pub fn is_clean(&self) -> bool {
        self.fatal.is_none() && self.structure_error.is_none() && self.sections_corrupt() == 0
    }

    /// First problem worth telling a human about, if any.
    pub fn first_problem(&self) -> Option<String> {
        if let Some(f) = &self.fatal {
            return Some(f.clone());
        }
        if let Some(s) = &self.structure_error {
            return Some(s.clone());
        }
        self.sections
            .iter()
            .find(|s| !s.status.is_ok())
            .map(|s| format!("section {}: {}", s.tag, s.status))
    }
}
