//! # wet-core — the Whole Execution Trace
//!
//! This crate implements the primary contribution of Zhang & Gupta's
//! MICRO 2004 paper: a **unified representation of complete program
//! profiles** — control flow, values, addresses, and data/control
//! dependences — as a static program graph labeled with dynamic
//! information, compressed in two tiers, and traversable in both
//! directions.
//!
//! * [`WetBuilder`] consumes the interpreter's event stream
//!   ([`wet_interp::TraceSink`]) and produces a tier-1 [`Wet`]: nodes
//!   are Ball–Larus paths whose executions share one timestamp (§3.1),
//!   node values are grouped with shared patterns (§3.2), and
//!   dependence labels local to a node are inferred away while
//!   identical non-local label sequences are stored once (§3.3).
//! * [`Wet::compress`] applies tier-2: every remaining label sequence
//!   becomes a bidirectional predictor-compressed stream
//!   ([`wet_stream`]).
//! * [`query`] answers the paper's profile queries — control-flow
//!   traces in either direction, per-instruction value and address
//!   traces, and backward/forward WET slices — against either tier.
//!
//! # Example
//!
//! ```
//! use wet_core::{query, WetBuilder, WetConfig};
//! use wet_interp::{Interp, InterpConfig};
//! use wet_ir::ballarus::BallLarus;
//! use wet_ir::builder::ProgramBuilder;
//! use wet_ir::stmt::{BinOp, Operand};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build a small looping program.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0);
//! let (e, h, b, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
//! let (i, c) = (f.reg(), f.reg());
//! f.block(e).movi(i, 0);
//! f.block(e).jump(h);
//! f.block(h).bin(BinOp::Lt, c, i, 50i64);
//! f.block(h).branch(c, b, x);
//! f.block(b).bin(BinOp::Add, i, i, 1i64);
//! f.block(b).jump(h);
//! f.block(x).out(i);
//! f.block(x).ret(None);
//! let main = f.finish();
//! let program = pb.finish(main)?;
//!
//! // Trace it into a WET and compress both tiers.
//! let bl = BallLarus::new(&program);
//! let mut builder = WetBuilder::new(&program, &bl, WetConfig::default());
//! Interp::new(&program, &bl, InterpConfig::default()).run(&[], &mut builder)?;
//! let mut wet = builder.finish();
//! wet.compress();
//!
//! // The whole control-flow trace is recoverable from the compressed form.
//! let trace = query::cf_trace_forward(&mut wet).unwrap();
//! assert_eq!(trace.len() as u64, wet.stats().paths_executed);
//! assert!(wet.sizes().ratio() > 1.0);
//! # Ok(())
//! # }
//! ```

pub mod capture;
pub mod crc;
pub mod dump;
pub mod fault;
pub mod par;
pub mod query;
pub mod salvage;
pub mod serial;
pub mod store;

mod build;
mod graph;
mod seq;
mod sizes;

pub use build::WetBuilder;
pub use capture::{Capture, CaptureFsck, CaptureSummary};
pub use graph::{
    CaptureConfig, Edge, Group, IntraEdge, LabelSeq, NdetRec, Node, NodeId, NodeStmt, TsMode, Wet, WetConfig,
    SLOT_CD, SLOT_MEM, SLOT_OP0, SLOT_OP1,
};
pub use salvage::{FsckReport, SectionReport, SectionStatus};
pub use seq::Seq;
pub use serial::{section_spans, SectionSpan};
pub use store::{
    resolve_under, sections_for_op, LazySection, PinGuard, StoreErr, StoreOptions, StoredTrace,
    TraceInfo, TraceStore, LAZY_SECTIONS,
};
pub use sizes::{ratio, CompressStats, StreamClass, WetSizes, WetStats};

#[cfg(test)]
mod tests {
    use super::*;
    use wet_interp::{Interp, InterpConfig, Recorder};
    use wet_ir::ballarus::BallLarus;
    use wet_ir::builder::ProgramBuilder;
    use wet_ir::stmt::{BinOp, Operand};
    use wet_ir::Program;

    /// Loop with repetitive values and memory traffic: a small constant
    /// table is loaded cyclically, so loads and their consumers repeat
    /// with period 4 (exercising §3.2 patterns), while stores write a
    /// disjoint region (exercising memory dependences).
    pub(crate) fn looping_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let (e, h, b, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
        let (n, i, c, a, w, y, t) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.block(e).input(n);
        f.block(e).store(0i64, 7i64);
        f.block(e).store(1i64, 11i64);
        f.block(e).store(2i64, 13i64);
        f.block(e).store(3i64, 17i64);
        f.block(e).movi(i, 0);
        f.block(e).jump(h);
        f.block(h).bin(BinOp::Lt, c, i, n);
        f.block(h).branch(c, b, x);
        f.block(b).bin(BinOp::Rem, a, i, 4i64);
        f.block(b).load(w, a);
        f.block(b).bin(BinOp::Mul, y, w, 3i64);
        f.block(b).bin(BinOp::Add, t, a, 10i64);
        f.block(b).store(t, y);
        f.block(b).bin(BinOp::Add, i, i, 1i64);
        f.block(b).jump(h);
        f.block(x).out(i);
        f.block(x).ret(Some(Operand::Reg(i)));
        let main = f.finish();
        pb.finish(main).unwrap()
    }

    pub(crate) fn build_wet(p: &Program, inputs: &[i64], config: WetConfig) -> (Wet, Recorder) {
        let bl = BallLarus::new(p);
        let mut builder = WetBuilder::new(p, &bl, config);
        let mut rec = Recorder::new();
        let mut sink = (&mut builder, &mut rec);
        Interp::new(p, &bl, InterpConfig::default()).run(inputs, &mut sink).expect("run");
        (builder.finish(), rec)
    }

    #[test]
    fn sizes_are_consistent() {
        let p = looping_program();
        let (mut wet, _) = build_wet(&p, &[200], WetConfig::default());
        let s = *wet.sizes();
        assert!(s.orig_ts > 0 && s.orig_vals > 0 && s.orig_edges > 0);
        assert!(s.t1_ts < s.orig_ts, "path timestamps beat per-stmt timestamps");
        assert!(s.t1_vals < s.orig_vals, "patterns + uvals beat raw values");
        assert!(s.t1_edges < s.orig_edges, "inference + sharing beat raw pairs");
        assert_eq!(s.t2_total(), 0, "tier-2 sizes unset before compress");
        wet.compress();
        let s2 = *wet.sizes();
        assert!(s2.t2_ts > 0);
        assert!(s2.t2_total() < s2.t1_total(), "tier-2 compresses further");
        assert!(s2.ratio() > 4.0, "overall ratio {} too low", s2.ratio());
    }

    #[test]
    fn timestamps_reconstruct_exactly() {
        let p = looping_program();
        let (mut wet, rec) = build_wet(&p, &[64], WetConfig::default());
        wet.compress();
        // Each node's ts stream must equal the recorded path timestamps.
        for pr in &rec.paths {
            let node = wet.node_for_path(pr.func, pr.path_id).expect("node exists");
            let ts = wet.node_mut(node).ts.to_vec();
            assert!(ts.contains(&pr.ts));
        }
        let total: usize = wet.nodes().iter().map(|n| n.n_execs as usize).sum();
        assert_eq!(total, rec.paths.len());
    }

    #[test]
    fn values_reconstruct_exactly() {
        let p = looping_program();
        for group in [true, false] {
            let cfg = WetConfig { group_values: group, ..Default::default() };
            let (mut wet, rec) = build_wet(&p, &[100], cfg);
            wet.compress();
            for stmt_id in 0..p.stmt_count() as u32 {
                let stmt = wet_ir::StmtId(stmt_id);
                let expected: Vec<i64> = rec.values_of(stmt);
                let got: Vec<i64> =
                    query::value_trace(&wet, stmt).unwrap().into_iter().map(|(_, v)| v).collect();
                assert_eq!(got, expected, "value trace mismatch for {stmt} (group={group})");
            }
        }
    }

    #[test]
    fn cf_trace_matches_recorder_both_directions() {
        let p = looping_program();
        for tier2 in [false, true] {
            let (mut wet, rec) = build_wet(&p, &[80], WetConfig::default());
            if tier2 {
                wet.compress();
            }
            let fwd = query::cf_trace_forward(&mut wet).unwrap();
            let blocks = query::expand_blocks(&wet, &fwd);
            assert_eq!(blocks, rec.block_trace(), "tier2={tier2}");
            let mut bwd = query::cf_trace_backward(&mut wet).unwrap();
            bwd.reverse();
            assert_eq!(bwd, fwd, "backward trace must mirror forward (tier2={tier2})");
        }
    }

    #[test]
    fn address_traces_match_recorder() {
        let p = looping_program();
        for tier2 in [false, true] {
            let (mut wet, rec) = build_wet(&p, &[60], WetConfig::default());
            if tier2 {
                wet.compress();
            }
            for stmt_id in 0..p.stmt_count() as u32 {
                let stmt = wet_ir::StmtId(stmt_id);
                let expected = rec.addresses_of(stmt);
                let got: Vec<u64> =
                    query::address_trace(&wet, &p, stmt).unwrap().into_iter().map(|(_, a)| a).collect();
                assert_eq!(got, expected, "address trace mismatch for {stmt} (tier2={tier2})");
            }
        }
    }

    #[test]
    fn global_timestamp_mode_is_equivalent() {
        let p = looping_program();
        let cfg = WetConfig { ts_mode: TsMode::Global, ..Default::default() };
        let (mut wet, rec) = build_wet(&p, &[60], cfg);
        wet.compress();
        let fwd = query::cf_trace_forward(&mut wet).unwrap();
        assert_eq!(query::expand_blocks(&wet, &fwd), rec.block_trace());
        for stmt_id in 0..p.stmt_count() as u32 {
            let stmt = wet_ir::StmtId(stmt_id);
            let got: Vec<u64> = query::address_trace(&wet, &p, stmt).unwrap().into_iter().map(|(_, a)| a).collect();
            assert_eq!(got, rec.addresses_of(stmt), "{stmt}");
        }
    }

    #[test]
    fn wets_validate_in_both_tiers() {
        let p = looping_program();
        let (mut wet, _) = build_wet(&p, &[60], WetConfig::default());
        wet.validate().expect("tier-1 valid");
        wet.compress();
        wet.validate().expect("tier-2 valid");
    }

    #[test]
    fn degraded_queries_match_strict_on_clean_wets() {
        let p = looping_program();
        let (mut wet, _) = build_wet(&p, &[60], WetConfig::default());
        wet.compress();
        let strict = query::cf_trace_forward(&mut wet).unwrap();
        let (deg_steps, deg) = query::cf_trace_forward_degraded(&wet);
        assert_eq!(deg_steps, strict);
        assert!(deg.is_complete());
        for stmt_id in 0..p.stmt_count() as u32 {
            let stmt = wet_ir::StmtId(stmt_id);
            let (vals, dv) = query::value_trace_degraded(&wet, stmt);
            assert_eq!(vals, query::value_trace(&wet, stmt).unwrap(), "{stmt}");
            assert!(dv.is_complete());
        }
    }

    #[test]
    fn degraded_queries_report_salvage_losses() {
        let p = looping_program();
        let (mut wet, _) = build_wet(&p, &[60], WetConfig::default());
        wet.compress();
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();

        // Damage the value section: control flow survives, values are
        // reported lost rather than wrong.
        let spans = serial::section_spans(&bytes).unwrap();
        let vals = spans.iter().find(|s| s.tag == serial::TAG_VALS).unwrap();
        let mut m = bytes.clone();
        m[vals.payload_start + 3] ^= 0x10;
        let (salvaged, report) = Wet::read_salvaging(&mut m.as_slice()).unwrap();
        assert!(report.seqs_lost > 0);
        let (steps, cf_deg) = query::cf_trace_forward_degraded(&salvaged);
        assert_eq!(steps, query::cf_trace_forward(&mut wet).unwrap(), "cf trace fully recovered");
        assert!(cf_deg.is_complete());
        let stmt = wet_ir::StmtId(0);
        let (vals_deg, dv) = query::value_trace_degraded(&salvaged, stmt);
        assert!(vals_deg.is_empty());
        assert!(dv.nodes_skipped > 0);

        // Damage the timestamp section: the cf trace degrades to the
        // recoverable portion (none, at section granularity) and the
        // gap accounting covers the whole execution.
        let tseq = spans.iter().find(|s| s.tag == serial::TAG_TSEQ).unwrap();
        let mut m2 = bytes.clone();
        m2[tseq.payload_start + 1] ^= 0x02;
        let (salvaged2, _) = Wet::read_salvaging(&mut m2.as_slice()).unwrap();
        let (steps2, deg2) = query::cf_trace_forward_degraded(&salvaged2);
        assert!(steps2.is_empty());
        assert!(deg2.gaps > 0);
        let (_, first_ts) = salvaged2.first();
        let (_, last_ts) = salvaged2.last();
        assert_eq!(deg2.steps_missing, last_ts - first_ts + 1);
    }

    #[test]
    fn degraded_cf_trace_resyncs_across_one_lost_node() {
        let p = looping_program();
        let (mut wet, _) = build_wet(&p, &[60], WetConfig::default());
        let strict = query::cf_trace_forward(&mut wet).unwrap();
        // Knock out a single node's timestamp stream in place —
        // finer-grained loss than section salvage produces, to prove
        // the resync logic recovers everything else.
        let lost = NodeId(1);
        let lost_execs = wet.node(lost).n_execs as u64;
        assert!(lost_execs > 0, "test node must execute");
        wet.node_mut(lost).ts = Seq::Unavailable(lost_execs);
        let (steps, deg) = query::cf_trace_forward_degraded(&wet);
        assert_eq!(deg.nodes_skipped, 1);
        assert_eq!(deg.steps_missing, lost_execs);
        assert!(deg.gaps >= 1);
        let kept: Vec<_> = strict.iter().filter(|s| s.node != lost).copied().collect();
        assert_eq!(steps, kept, "every step outside the lost node survives");
    }

    #[test]
    fn degraded_backward_slice_counts_lost_deps() {
        let p = looping_program();
        let (mut wet, _) = build_wet(&p, &[40], WetConfig::default());
        wet.compress();
        // Criterion on the destination of a labeled (non-local) edge,
        // so the slice must consult the label pool.
        let criterion = {
            let e = wet.edges()[0];
            query::WetSliceElem { node: e.dst_node, stmt: e.dst_stmt, k: 0 }
        };
        let strict = query::backward_slice(&mut wet, &p, criterion, Default::default()).unwrap();
        let (same, deg) = query::backward_slice_degraded(&mut wet, &p, criterion, Default::default());
        assert_eq!(same.stamped, strict.stamped);
        assert!(deg.is_complete());
        // Lose every edge label: the slice shrinks, the report says so.
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let spans = serial::section_spans(&bytes).unwrap();
        let edgl = spans.iter().find(|s| s.tag == serial::TAG_EDGL).unwrap();
        let mut m = bytes.clone();
        m[edgl.payload_start] ^= 0x01;
        let (mut salvaged, _) = Wet::read_salvaging(&mut m.as_slice()).unwrap();
        let (partial, deg2) = query::backward_slice_degraded(&mut salvaged, &p, criterion, Default::default());
        assert!(partial.stamped.len() <= strict.stamped.len());
        assert!(deg2.seqs_unavailable > 0);
    }

    #[test]
    fn inference_drops_most_intra_edges() {
        let p = looping_program();
        let (wet, _) = build_wet(&p, &[100], WetConfig::default());
        assert!(wet.stats().inferred_edges > 0, "loop body deps are intra-path and complete");
    }

    #[test]
    fn ablation_flags_affect_sizes() {
        let p = looping_program();
        let (mut on, _) = build_wet(&p, &[150], WetConfig::default());
        let cfg_off = WetConfig {
            group_values: false,
            infer_local_edges: false,
            share_edge_labels: false,
            ..Default::default()
        };
        let (mut off, _) = build_wet(&p, &[150], cfg_off);
        assert!(on.sizes().t1_edges < off.sizes().t1_edges, "inference + sharing must reduce edge bytes");
        // Value bytes never exceed the raw form thanks to the pattern
        // cost guard (grouping itself can go either way per workload).
        assert!(on.sizes().t1_vals <= on.sizes().orig_vals);
        assert!(off.sizes().t1_vals <= off.sizes().orig_vals);
        // Queries stay correct without the optimizations.
        on.compress();
        off.compress();
        let a = query::cf_trace_forward(&mut on).unwrap();
        let b = query::cf_trace_forward(&mut off).unwrap();
        assert_eq!(a.len(), b.len());
    }
}
