//! Deterministic fault injection for `.wetz` containers.
//!
//! The robustness claim of the v2 format — the decoder never panics,
//! aborts, or over-allocates, no matter what bytes arrive — is only as
//! good as the adversary testing it. This module is that adversary: a
//! seeded, dependency-free mutation source the fault-injection harness
//! (and `ci.sh`) replays byte-for-byte identically on every run.
//!
//! Four mutation families, matching the ways trace files really get
//! damaged:
//!
//! * **bit flips** — storage or transport corruption anywhere in the
//!   file, including headers, length prefixes, and checksums;
//! * **truncations** — interrupted writes, cut at and around every
//!   section boundary;
//! * **length-prefix inflation** — the classic decoder attack: a tiny
//!   file claiming a huge payload;
//! * **section shuffles** — misassembled or spliced containers.
//!
//! Everything is driven by [`FaultRng`], a SplitMix64 generator written
//! out here (8 lines) rather than pulling in a random crate: fault
//! schedules must be stable across platforms and toolchain updates.

use crate::serial::{section_spans, SectionSpan};
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic 64-bit PRNG (SplitMix64). Same seed → same mutation
/// schedule, forever, on every platform.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A simulated crash point for the segmented-capture harness
/// ([`crate::capture`]). Durable writes (segment files and manifest
/// replacements) are numbered from 1 in the order a capture performs
/// them; the plan makes the `at_op`-th one fail the way a power loss
/// would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 1-based index of the durable write that never completes. Writes
    /// `1..at_op` land durably; the capture dies at `at_op`.
    pub at_op: u64,
    /// What the interrupted write leaves on disk.
    pub mode: CrashMode,
}

/// How a crashed durable write manifests on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Nothing lands: the process dies just before the write.
    Kill,
    /// A torn write: a seeded-length prefix of the bytes lands (for a
    /// manifest replacement, the torn temp file is still renamed into
    /// place — the worst case a non-fsynced rename permits).
    Torn {
        /// Seed for the prefix-length choice.
        seed: u64,
    },
}

// ---------------------------------------------------------------------------
// Syscall-fault chaos layer: a seedable VFS shim over the handful of
// filesystem operations the capture, store, and serving paths perform.
// ---------------------------------------------------------------------------

/// What a planned syscall fault returns, generalizing [`CrashPlan`]
/// (which simulates power loss) to disks that stay up but fail:
/// `ENOSPC`, `EIO`, short writes, fsync refusals, and torn renames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The `at_op`-th write returns `ENOSPC` with nothing written.
    Enospc,
    /// The `at_op`-th operation of *any* class returns `EIO`.
    Eio,
    /// The `at_op`-th write lands a seeded prefix, then fails `ENOSPC`.
    ShortWrite,
    /// The `at_op`-th `sync_all` fails `EIO`; the data may or may not
    /// be durable — exactly the ambiguity real fsync failures leave.
    FsyncFail,
    /// The `at_op`-th rename publishes a seeded-length prefix of the
    /// source at the destination, unlinks the source, and fails `EIO`
    /// — the worst case a crashing rename across a non-atomic layer
    /// (or a corrupting controller) permits.
    TornRename,
}

impl FaultKind {
    /// Stable label, used in env parsing, counters, and messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::ShortWrite => "short",
            FaultKind::FsyncFail => "fsync",
            FaultKind::TornRename => "torn-rename",
        }
    }

    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "enospc" => Some(FaultKind::Enospc),
            "eio" => Some(FaultKind::Eio),
            "short" | "short-write" => Some(FaultKind::ShortWrite),
            "fsync" | "fsync-fail" => Some(FaultKind::FsyncFail),
            "torn-rename" => Some(FaultKind::TornRename),
            _ => None,
        }
    }
}

/// A seeded plan for one injected syscall fault, the [`CrashPlan`]
/// counterpart for disks that error instead of dying. Eligible
/// operations are numbered from 1 per [`FaultKind`] class (writes for
/// `Enospc`/`ShortWrite`, fsyncs for `FsyncFail`, renames for
/// `TornRename`, every operation for `Eio`); the `at_op`-th one fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 1-based index of the eligible operation that fails.
    pub at_op: u64,
    /// How it fails.
    pub kind: FaultKind,
    /// Seed for data-dependent choices (short-write and torn-rename
    /// prefix lengths).
    pub seed: u64,
}

impl FaultPlan {
    /// Reads a plan from `WET_FAULT_AT` / `WET_FAULT_KIND` /
    /// `WET_FAULT_SEED`, mirroring the `WET_CRASH_AT` hook: unset (or
    /// unparsable) environment means no plan.
    pub fn from_env() -> Option<FaultPlan> {
        let at_op: u64 = std::env::var("WET_FAULT_AT").ok()?.trim().parse().ok()?;
        if at_op == 0 {
            return None;
        }
        let kind = std::env::var("WET_FAULT_KIND")
            .ok()
            .and_then(|s| FaultKind::parse(s.trim()))
            .unwrap_or(FaultKind::Eio);
        let seed = std::env::var("WET_FAULT_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0x5eed_fa17);
        Some(FaultPlan { at_op, kind, seed })
    }
}

/// The operation classes [`Vfs`] counts for fault eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Open,
    Read,
    Write,
    Fsync,
    Rename,
    Remove,
}

/// The thin I/O seam every direct-filesystem site in wet-core and
/// wet-serve goes through. The production implementation ([`Vfs`]
/// without a plan) is a zero-cost passthrough to `std::fs`; with a
/// [`FaultPlan`] it injects exactly one typed failure at a chosen
/// operation index. All methods take `&self` so one instance can be
/// shared (`Arc<Vfs>`) across capture, store, and log-rotation threads.
pub trait Io: Send + Sync {
    /// Opens an existing file for reading.
    fn open(&self, path: &Path) -> io::Result<File>;
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Appends/overwrites `bytes` through an open handle.
    fn write(&self, file: &mut File, bytes: &[u8]) -> io::Result<()>;
    /// Creates (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<File>;
    /// Durability barrier on an open handle.
    fn fsync(&self, file: &File) -> io::Result<()>;
    /// Atomically (in the absence of faults) replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Positional read into `buf` at `off` (no seek on the handle).
    fn pread(&self, file: &File, buf: &mut [u8], off: u64) -> io::Result<()>;
}

/// The standard [`Io`] implementation: real filesystem calls, with an
/// optional [`FaultPlan`] that makes one of them fail. Operation
/// counting is per class and atomic, so a `Vfs` shared across threads
/// still fires exactly once (the first thread to reach the index).
#[derive(Debug, Default)]
pub struct Vfs {
    plan: Option<FaultPlan>,
    opens: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    renames: AtomicU64,
    removes: AtomicU64,
    fired: AtomicU64,
}

/// `ENOSPC` as a typed `io::Error`.
fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28)
}

/// `EIO` as a typed `io::Error`.
fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

/// True when `e` is the disk-full errno (the capture pressure path
/// keys off this to degrade instead of dying).
pub fn is_disk_full(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull
}

impl Vfs {
    /// A passthrough `Vfs` with no fault plan.
    pub fn real() -> Vfs {
        Vfs::default()
    }

    /// A `Vfs` that will fail per `plan`.
    pub fn with_plan(plan: FaultPlan) -> Vfs {
        Vfs { plan: Some(plan), ..Vfs::default() }
    }

    /// A `Vfs` honoring `WET_FAULT_*` (passthrough when unset).
    pub fn from_env() -> Vfs {
        match FaultPlan::from_env() {
            Some(p) => Vfs::with_plan(p),
            None => Vfs::real(),
        }
    }

    /// The active plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// How many planned faults this instance has injected.
    pub fn faults_injected(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Counts one logical read without performing one — the hook for
    /// paths that read through an mmap (no syscall to intercept) or
    /// that do their own positioned I/O. Errors when the plan fires.
    pub fn read_gate(&self) -> io::Result<()> {
        if self.tick(OpClass::Read).is_some() {
            return Err(eio());
        }
        Ok(())
    }

    /// Counts one operation of `class`; when the plan targets this
    /// class and the 1-based count hits `at_op`, returns the plan (the
    /// caller then manufactures the failure). `Eio` plans target every
    /// class and share one combined count.
    fn tick(&self, class: OpClass) -> Option<FaultPlan> {
        let plan = self.plan?;
        let eligible = match plan.kind {
            FaultKind::Eio => true,
            FaultKind::Enospc | FaultKind::ShortWrite => class == OpClass::Write,
            FaultKind::FsyncFail => class == OpClass::Fsync,
            FaultKind::TornRename => class == OpClass::Rename,
        };
        let ctr = if plan.kind == FaultKind::Eio {
            &self.opens // combined count lives on one counter for Eio
        } else {
            match class {
                OpClass::Open => &self.opens,
                OpClass::Read => &self.reads,
                OpClass::Write => &self.writes,
                OpClass::Fsync => &self.fsyncs,
                OpClass::Rename => &self.renames,
                OpClass::Remove => &self.removes,
            }
        };
        if !eligible {
            return None;
        }
        let n = ctr.fetch_add(1, Ordering::Relaxed) + 1;
        if n == plan.at_op {
            self.fired.fetch_add(1, Ordering::Relaxed);
            wet_obs::counter_add("io.faults_injected", plan.kind.name(), 1);
            Some(plan)
        } else {
            None
        }
    }
}

impl Io for Vfs {
    fn open(&self, path: &Path) -> io::Result<File> {
        if self.tick(OpClass::Open).is_some() {
            return Err(eio());
        }
        File::open(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.tick(OpClass::Read).is_some() {
            return Err(eio());
        }
        std::fs::read(path)
    }

    fn write(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        match self.tick(OpClass::Write).map(|p| (p.kind, p.seed)) {
            Some((FaultKind::Enospc, _)) => Err(enospc()),
            Some((FaultKind::ShortWrite, seed)) => {
                // A seeded prefix lands, then the device reports full —
                // the torn state a real ENOSPC mid-write leaves behind.
                if bytes.len() > 1 {
                    let cut = 1 + FaultRng::new(seed).below(bytes.len() as u64 - 1) as usize;
                    file.write_all(&bytes[..cut])?;
                }
                Err(enospc())
            }
            Some(_) => Err(eio()),
            None => file.write_all(bytes),
        }
    }

    fn create(&self, path: &Path) -> io::Result<File> {
        if self.tick(OpClass::Open).is_some() {
            return Err(eio());
        }
        File::create(path)
    }

    fn fsync(&self, file: &File) -> io::Result<()> {
        if self.tick(OpClass::Fsync).is_some() {
            // The kernel may or may not have flushed; either way the
            // barrier was refused, so the caller must treat everything
            // since the last successful fsync as undurable.
            return Err(eio());
        }
        file.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(p) = self.tick(OpClass::Rename) {
            // Publish a torn prefix at the destination and unlink the
            // source: the observable end state of a rename that went
            // through a corrupting path, never a panic-worthy one.
            let bytes = std::fs::read(from).unwrap_or_default();
            let cut = if bytes.is_empty() {
                0
            } else {
                FaultRng::new(p.seed).below(bytes.len() as u64) as usize
            };
            let mut f = File::create(to)?;
            f.write_all(&bytes[..cut])?;
            let _ = f.sync_all();
            let _ = std::fs::remove_file(from);
            return Err(eio());
        }
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if self.tick(OpClass::Remove).is_some() {
            return Err(eio());
        }
        std::fs::remove_file(path)
    }

    fn pread(&self, file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
        if self.tick(OpClass::Read).is_some() {
            return Err(eio());
        }
        pread_exact(file, buf, off)
    }
}

/// Positional exact read: `read_exact_at` on unix, seek+read elsewhere
/// (the non-unix fallback moves the cursor; callers that share the
/// handle already serialize access).
pub fn pread_exact(file: &File, buf: &mut [u8], off: u64) -> io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, off)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)
    }
}

/// Flips one random bit anywhere in the image.
pub fn bit_flip(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let mut m = bytes.to_vec();
    let at = rng.below(m.len() as u64) as usize;
    let bit = rng.below(8) as u8;
    m[at] ^= 1 << bit;
    (format!("bit-flip @{at}.{bit}"), m)
}

/// Cuts the image at a random byte offset.
pub fn truncate_random(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let at = rng.below(bytes.len() as u64 + 1) as usize;
    (format!("truncate @{at}"), bytes[..at].to_vec())
}

/// Every truncation point a section boundary offers: before the tag,
/// after the length prefix, one byte into the payload, and one byte
/// short of the trailing CRC — for every section in the file.
pub fn boundary_truncations(bytes: &[u8]) -> Vec<(String, Vec<u8>)> {
    let spans = match section_spans(bytes) {
        Ok(s) => s,
        Err(_) => return Vec::new(),
    };
    let mut out = Vec::new();
    let name = |s: &SectionSpan| String::from_utf8_lossy(&s.tag).into_owned();
    for s in &spans {
        for (what, at) in [
            ("before", s.start),
            ("after-header", s.payload_start),
            ("into-payload", (s.payload_start + 1).min(s.end)),
            ("before-crc", s.end.saturating_sub(1)),
        ] {
            out.push((format!("truncate {} {}@{at}", what, name(s)), bytes[..at].to_vec()));
        }
    }
    out
}

/// Inflates one section's length prefix — either to an outright
/// implausible size or to a value that merely overruns the file — so
/// the decoder's allocation discipline is what stands between it and an
/// OOM.
pub fn inflate_length(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let spans = match section_spans(bytes) {
        Ok(s) if !s.is_empty() => s,
        _ => return ("inflate (unsectioned)".into(), bytes.to_vec()),
    };
    let s = spans[rng.below(spans.len() as u64) as usize];
    let huge = if rng.below(2) == 0 {
        u64::MAX / 2 // far beyond the section cap
    } else {
        (s.payload_len as u64) + 1 + rng.below(1 << 20) // plausible, but past EOF
    };
    let mut m = bytes.to_vec();
    m[s.len_start..s.len_start + 8].copy_from_slice(&huge.to_le_bytes());
    (format!("inflate-len {} -> {huge}", String::from_utf8_lossy(&s.tag)), m)
}

/// Swaps two whole sections (tag + length + payload + CRC), leaving
/// each internally checksum-valid but the file out of order.
pub fn shuffle_sections(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let spans = match section_spans(bytes) {
        Ok(s) if s.len() >= 2 => s,
        _ => return ("shuffle (unsectioned)".into(), bytes.to_vec()),
    };
    let a = rng.below(spans.len() as u64) as usize;
    let mut b = rng.below(spans.len() as u64) as usize;
    if a == b {
        b = (b + 1) % spans.len();
    }
    let (lo, hi) = (a.min(b), a.max(b));
    let (sa, sb) = (spans[lo], spans[hi]);
    let mut m = Vec::with_capacity(bytes.len());
    m.extend_from_slice(&bytes[..sa.start]);
    m.extend_from_slice(&bytes[sb.start..sb.end]);
    m.extend_from_slice(&bytes[sa.end..sb.start]);
    m.extend_from_slice(&bytes[sa.start..sa.end]);
    m.extend_from_slice(&bytes[sb.end..]);
    (
        format!(
            "shuffle {}<->{}",
            String::from_utf8_lossy(&sa.tag),
            String::from_utf8_lossy(&sb.tag)
        ),
        m,
    )
}

/// One random mutation drawn from all families. The returned string
/// describes the damage for failure messages.
pub fn random_mutation(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    match rng.below(4) {
        0 => bit_flip(bytes, rng),
        1 => truncate_random(bytes, rng),
        2 => inflate_length(bytes, rng),
        _ => shuffle_sections(bytes, rng),
    }
}

// ---------------------------------------------------------------------------
// Server drill: misbehaving-client behaviors for the query daemon.
// ---------------------------------------------------------------------------

/// One misbehaving client the serve drill throws at a live daemon.
/// Each variant targets one failure surface: the framing layer, the
/// slow-sender budget, admission under load, or the cancel path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrillClient {
    /// Trickles a valid frame a few bytes at a time with long pauses —
    /// must either complete or be dropped by the stall budget, never
    /// wedge the server.
    SlowLoris { chunk: usize, pause_ms: u64 },
    /// Sends a frame prefix plus a partial payload, then disconnects.
    MidFrameCut { keep: usize },
    /// Sends a correctly framed payload of non-JSON garbage.
    GarbageFrame { len: usize },
    /// Claims an absurd frame length and disconnects; the server must
    /// reject it before allocating.
    HugeLength,
    /// Fires a burst of real queries with a deadline too short to meet;
    /// each must come back as a typed `deadline` (or `shed`) error.
    DeadlineStorm { n: usize, deadline_ms: u64 },
    /// Starts a real query, then cancels it after a short pause —
    /// racing completion is fine, hanging is not.
    CancelRace { pause_ms: u64 },
}

/// Deterministic drill schedule: `n` misbehaving clients drawn from all
/// families, seeded so failures replay exactly.
pub fn drill_schedule(seed: u64, n: usize) -> Vec<DrillClient> {
    let mut rng = FaultRng::new(seed);
    (0..n)
        .map(|_| match rng.below(6) {
            0 => DrillClient::SlowLoris {
                chunk: 1 + rng.below(3) as usize,
                pause_ms: 5 + rng.below(40),
            },
            1 => DrillClient::MidFrameCut {
                keep: 1 + rng.below(16) as usize,
            },
            2 => DrillClient::GarbageFrame {
                len: 1 + rng.below(256) as usize,
            },
            3 => DrillClient::HugeLength,
            4 => DrillClient::DeadlineStorm {
                n: 2 + rng.below(6) as usize,
                deadline_ms: rng.below(3),
            },
            _ => DrillClient::CancelRace {
                pause_ms: rng.below(20),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Known first value for seed 42 locks the algorithm down.
        assert_eq!(FaultRng::new(42).next_u64(), FaultRng::new(42).next_u64());
        assert_ne!(FaultRng::new(1).next_u64(), FaultRng::new(2).next_u64());
    }

    #[test]
    fn vfs_injects_each_fault_kind_exactly_once() {
        let d = std::env::temp_dir().join(format!("wet-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();

        // ENOSPC on the 2nd write: first lands, second is typed, third
        // (plan spent) lands again.
        let vfs = Vfs::with_plan(FaultPlan { at_op: 2, kind: FaultKind::Enospc, seed: 1 });
        let p = d.join("a");
        let mut f = vfs.create(&p).unwrap();
        vfs.write(&mut f, b"one").unwrap();
        let e = vfs.write(&mut f, b"two").unwrap_err();
        assert!(is_disk_full(&e), "expected ENOSPC, got {e}");
        vfs.write(&mut f, b"three").unwrap();
        assert_eq!(vfs.faults_injected(), 1);

        // Short write: a strict prefix lands before the typed failure.
        let vfs = Vfs::with_plan(FaultPlan { at_op: 1, kind: FaultKind::ShortWrite, seed: 9 });
        let p = d.join("b");
        let mut f = vfs.create(&p).unwrap();
        let e = vfs.write(&mut f, b"0123456789").unwrap_err();
        assert!(is_disk_full(&e));
        let len = std::fs::metadata(&p).unwrap().len();
        assert!((1..10).contains(&len), "short write landed {len} of 10");

        // Torn rename: destination holds a prefix, source is gone,
        // caller sees a typed EIO.
        let vfs = Vfs::with_plan(FaultPlan { at_op: 1, kind: FaultKind::TornRename, seed: 3 });
        let src = d.join("src");
        let dst = d.join("dst");
        std::fs::write(&src, b"payload-bytes").unwrap();
        let e = vfs.rename(&src, &dst).unwrap_err();
        assert_eq!(e.raw_os_error(), Some(5));
        assert!(!src.exists(), "torn rename unlinks the source");
        assert!(std::fs::read(&dst).unwrap().len() < 13);

        // Fsync refusal is typed; a later fsync succeeds.
        let vfs = Vfs::with_plan(FaultPlan { at_op: 1, kind: FaultKind::FsyncFail, seed: 0 });
        let f = vfs.create(&d.join("c")).unwrap();
        assert!(vfs.fsync(&f).is_err());
        vfs.fsync(&f).unwrap();

        // Eio counts every class on one combined counter.
        let vfs = Vfs::with_plan(FaultPlan { at_op: 3, kind: FaultKind::Eio, seed: 0 });
        let p = d.join("e");
        std::fs::write(&p, b"x").unwrap();
        assert!(vfs.open(&p).is_ok()); // op 1
        assert!(vfs.read(&p).is_ok()); // op 2
        assert_eq!(vfs.read(&p).unwrap_err().raw_os_error(), Some(5)); // op 3 fires
        assert!(vfs.read(&p).is_ok());

        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn fault_plan_env_parsing_mirrors_crash_plan() {
        // Parsing is exercised via the pure parse helpers to avoid
        // mutating process-global env in a threaded test binary.
        assert_eq!(FaultKind::parse("enospc"), Some(FaultKind::Enospc));
        assert_eq!(FaultKind::parse("short-write"), Some(FaultKind::ShortWrite));
        assert_eq!(FaultKind::parse("torn-rename"), Some(FaultKind::TornRename));
        assert_eq!(FaultKind::parse("fsync"), Some(FaultKind::FsyncFail));
        assert_eq!(FaultKind::parse("eio"), Some(FaultKind::Eio));
        assert_eq!(FaultKind::parse("nope"), None);
        for k in [
            FaultKind::Enospc,
            FaultKind::Eio,
            FaultKind::ShortWrite,
            FaultKind::FsyncFail,
            FaultKind::TornRename,
        ] {
            assert_eq!(FaultKind::parse(k.name()), Some(k), "name/parse round-trip for {k:?}");
        }
    }

    #[test]
    fn pread_exact_reads_at_offset() {
        let d = std::env::temp_dir().join(format!("wet-pread-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("f");
        std::fs::write(&p, b"abcdefgh").unwrap();
        let f = File::open(&p).unwrap();
        let mut buf = [0u8; 3];
        pread_exact(&f, &mut buf, 2).unwrap();
        assert_eq!(&buf, b"cde");
        assert!(pread_exact(&f, &mut buf, 7).is_err(), "past-EOF pread is a typed error");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn mutations_change_or_shrink_the_image() {
        // A synthetic sectioned image: header + one fake section layout
        // is not valid WETZ, so use a real one.
        let p = crate::tests::looping_program();
        let (wet, _) = crate::tests::build_wet(&p, &[30], crate::WetConfig::default());
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let mut rng = FaultRng::new(7);
        for i in 0..50 {
            let (what, m) = random_mutation(&bytes, &mut rng);
            assert!(
                m != bytes || what.contains("truncate @"),
                "mutation {i} ({what}) left the image untouched"
            );
        }
        assert!(!boundary_truncations(&bytes).is_empty());
    }
}
