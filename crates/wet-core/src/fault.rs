//! Deterministic fault injection for `.wetz` containers.
//!
//! The robustness claim of the v2 format — the decoder never panics,
//! aborts, or over-allocates, no matter what bytes arrive — is only as
//! good as the adversary testing it. This module is that adversary: a
//! seeded, dependency-free mutation source the fault-injection harness
//! (and `ci.sh`) replays byte-for-byte identically on every run.
//!
//! Four mutation families, matching the ways trace files really get
//! damaged:
//!
//! * **bit flips** — storage or transport corruption anywhere in the
//!   file, including headers, length prefixes, and checksums;
//! * **truncations** — interrupted writes, cut at and around every
//!   section boundary;
//! * **length-prefix inflation** — the classic decoder attack: a tiny
//!   file claiming a huge payload;
//! * **section shuffles** — misassembled or spliced containers.
//!
//! Everything is driven by [`FaultRng`], a SplitMix64 generator written
//! out here (8 lines) rather than pulling in a random crate: fault
//! schedules must be stable across platforms and toolchain updates.

use crate::serial::{section_spans, SectionSpan};

/// Deterministic 64-bit PRNG (SplitMix64). Same seed → same mutation
/// schedule, forever, on every platform.
#[derive(Debug, Clone)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A simulated crash point for the segmented-capture harness
/// ([`crate::capture`]). Durable writes (segment files and manifest
/// replacements) are numbered from 1 in the order a capture performs
/// them; the plan makes the `at_op`-th one fail the way a power loss
/// would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 1-based index of the durable write that never completes. Writes
    /// `1..at_op` land durably; the capture dies at `at_op`.
    pub at_op: u64,
    /// What the interrupted write leaves on disk.
    pub mode: CrashMode,
}

/// How a crashed durable write manifests on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Nothing lands: the process dies just before the write.
    Kill,
    /// A torn write: a seeded-length prefix of the bytes lands (for a
    /// manifest replacement, the torn temp file is still renamed into
    /// place — the worst case a non-fsynced rename permits).
    Torn {
        /// Seed for the prefix-length choice.
        seed: u64,
    },
}

/// Flips one random bit anywhere in the image.
pub fn bit_flip(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let mut m = bytes.to_vec();
    let at = rng.below(m.len() as u64) as usize;
    let bit = rng.below(8) as u8;
    m[at] ^= 1 << bit;
    (format!("bit-flip @{at}.{bit}"), m)
}

/// Cuts the image at a random byte offset.
pub fn truncate_random(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let at = rng.below(bytes.len() as u64 + 1) as usize;
    (format!("truncate @{at}"), bytes[..at].to_vec())
}

/// Every truncation point a section boundary offers: before the tag,
/// after the length prefix, one byte into the payload, and one byte
/// short of the trailing CRC — for every section in the file.
pub fn boundary_truncations(bytes: &[u8]) -> Vec<(String, Vec<u8>)> {
    let spans = match section_spans(bytes) {
        Ok(s) => s,
        Err(_) => return Vec::new(),
    };
    let mut out = Vec::new();
    let name = |s: &SectionSpan| String::from_utf8_lossy(&s.tag).into_owned();
    for s in &spans {
        for (what, at) in [
            ("before", s.start),
            ("after-header", s.payload_start),
            ("into-payload", (s.payload_start + 1).min(s.end)),
            ("before-crc", s.end.saturating_sub(1)),
        ] {
            out.push((format!("truncate {} {}@{at}", what, name(s)), bytes[..at].to_vec()));
        }
    }
    out
}

/// Inflates one section's length prefix — either to an outright
/// implausible size or to a value that merely overruns the file — so
/// the decoder's allocation discipline is what stands between it and an
/// OOM.
pub fn inflate_length(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let spans = match section_spans(bytes) {
        Ok(s) if !s.is_empty() => s,
        _ => return ("inflate (unsectioned)".into(), bytes.to_vec()),
    };
    let s = spans[rng.below(spans.len() as u64) as usize];
    let huge = if rng.below(2) == 0 {
        u64::MAX / 2 // far beyond the section cap
    } else {
        (s.payload_len as u64) + 1 + rng.below(1 << 20) // plausible, but past EOF
    };
    let mut m = bytes.to_vec();
    m[s.len_start..s.len_start + 8].copy_from_slice(&huge.to_le_bytes());
    (format!("inflate-len {} -> {huge}", String::from_utf8_lossy(&s.tag)), m)
}

/// Swaps two whole sections (tag + length + payload + CRC), leaving
/// each internally checksum-valid but the file out of order.
pub fn shuffle_sections(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    let spans = match section_spans(bytes) {
        Ok(s) if s.len() >= 2 => s,
        _ => return ("shuffle (unsectioned)".into(), bytes.to_vec()),
    };
    let a = rng.below(spans.len() as u64) as usize;
    let mut b = rng.below(spans.len() as u64) as usize;
    if a == b {
        b = (b + 1) % spans.len();
    }
    let (lo, hi) = (a.min(b), a.max(b));
    let (sa, sb) = (spans[lo], spans[hi]);
    let mut m = Vec::with_capacity(bytes.len());
    m.extend_from_slice(&bytes[..sa.start]);
    m.extend_from_slice(&bytes[sb.start..sb.end]);
    m.extend_from_slice(&bytes[sa.end..sb.start]);
    m.extend_from_slice(&bytes[sa.start..sa.end]);
    m.extend_from_slice(&bytes[sb.end..]);
    (
        format!(
            "shuffle {}<->{}",
            String::from_utf8_lossy(&sa.tag),
            String::from_utf8_lossy(&sb.tag)
        ),
        m,
    )
}

/// One random mutation drawn from all families. The returned string
/// describes the damage for failure messages.
pub fn random_mutation(bytes: &[u8], rng: &mut FaultRng) -> (String, Vec<u8>) {
    match rng.below(4) {
        0 => bit_flip(bytes, rng),
        1 => truncate_random(bytes, rng),
        2 => inflate_length(bytes, rng),
        _ => shuffle_sections(bytes, rng),
    }
}

// ---------------------------------------------------------------------------
// Server drill: misbehaving-client behaviors for the query daemon.
// ---------------------------------------------------------------------------

/// One misbehaving client the serve drill throws at a live daemon.
/// Each variant targets one failure surface: the framing layer, the
/// slow-sender budget, admission under load, or the cancel path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrillClient {
    /// Trickles a valid frame a few bytes at a time with long pauses —
    /// must either complete or be dropped by the stall budget, never
    /// wedge the server.
    SlowLoris { chunk: usize, pause_ms: u64 },
    /// Sends a frame prefix plus a partial payload, then disconnects.
    MidFrameCut { keep: usize },
    /// Sends a correctly framed payload of non-JSON garbage.
    GarbageFrame { len: usize },
    /// Claims an absurd frame length and disconnects; the server must
    /// reject it before allocating.
    HugeLength,
    /// Fires a burst of real queries with a deadline too short to meet;
    /// each must come back as a typed `deadline` (or `shed`) error.
    DeadlineStorm { n: usize, deadline_ms: u64 },
    /// Starts a real query, then cancels it after a short pause —
    /// racing completion is fine, hanging is not.
    CancelRace { pause_ms: u64 },
}

/// Deterministic drill schedule: `n` misbehaving clients drawn from all
/// families, seeded so failures replay exactly.
pub fn drill_schedule(seed: u64, n: usize) -> Vec<DrillClient> {
    let mut rng = FaultRng::new(seed);
    (0..n)
        .map(|_| match rng.below(6) {
            0 => DrillClient::SlowLoris {
                chunk: 1 + rng.below(3) as usize,
                pause_ms: 5 + rng.below(40),
            },
            1 => DrillClient::MidFrameCut {
                keep: 1 + rng.below(16) as usize,
            },
            2 => DrillClient::GarbageFrame {
                len: 1 + rng.below(256) as usize,
            },
            3 => DrillClient::HugeLength,
            4 => DrillClient::DeadlineStorm {
                n: 2 + rng.below(6) as usize,
                deadline_ms: rng.below(3),
            },
            _ => DrillClient::CancelRace {
                pause_ms: rng.below(20),
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Known first value for seed 42 locks the algorithm down.
        assert_eq!(FaultRng::new(42).next_u64(), FaultRng::new(42).next_u64());
        assert_ne!(FaultRng::new(1).next_u64(), FaultRng::new(2).next_u64());
    }

    #[test]
    fn mutations_change_or_shrink_the_image() {
        // A synthetic sectioned image: header + one fake section layout
        // is not valid WETZ, so use a real one.
        let p = crate::tests::looping_program();
        let (wet, _) = crate::tests::build_wet(&p, &[30], crate::WetConfig::default());
        let mut bytes = Vec::new();
        wet.write_to(&mut bytes).unwrap();
        let mut rng = FaultRng::new(7);
        for i in 0..50 {
            let (what, m) = random_mutation(&bytes, &mut rng);
            assert!(
                m != bytes || what.contains("truncate @"),
                "mutation {i} ({what}) left the image untouched"
            );
        }
        assert!(!boundary_truncations(&bytes).is_empty());
    }
}
