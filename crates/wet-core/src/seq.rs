//! Label sequences that exist in tier-1 (raw) or tier-2 (compressed)
//! form.
//!
//! Every WET label — node timestamps, value patterns, unique values,
//! edge timestamp pairs — is a sequence of integers. After tier-1
//! (customized) compression the sequences are plain vectors; tier-2
//! replaces each with a bidirectional [`CompressedStream`]. Queries run
//! against either form through the same interface, which is how the
//! paper reports response times "after tier-1 compression and after
//! tier-2 compression".

use wet_stream::{CompressedStream, StreamConfig};

/// A sequence of `u64` labels in raw (tier-1) or compressed (tier-2)
/// form — or a placeholder for data lost to container corruption.
#[derive(Debug, Clone)]
pub enum Seq {
    /// Tier-1: a plain vector.
    Raw(Vec<u64>),
    /// Tier-2: a bidirectional compressed stream.
    Compressed(CompressedStream),
    /// Data lost to a failed section checksum during salvage
    /// ([`crate::Wet::read_salvaging`]). The length is preserved from
    /// the (intact) structure section so validation and accounting
    /// still line up; reads must go through the checked accessors.
    Unavailable(u64),
}

impl Seq {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Seq::Raw(v) => v.len(),
            Seq::Compressed(s) => s.len(),
            Seq::Unavailable(n) => *n as usize,
        }
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the values can actually be read — `false` only for
    /// [`Seq::Unavailable`] placeholders left by salvage.
    pub fn is_available(&self) -> bool {
        !matches!(self, Seq::Unavailable(_))
    }

    /// Reads index `i`. Takes `&mut self` because tier-2 reads move the
    /// stream cursor.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the sequence is
    /// [`Unavailable`](Seq::Unavailable) (degraded query paths check
    /// [`is_available`](Seq::is_available) first).
    pub fn get(&mut self, i: usize) -> u64 {
        match self {
            Seq::Raw(v) => v[i],
            Seq::Compressed(s) => s.get(i),
            Seq::Unavailable(_) => panic!("read from unavailable (salvage-lost) sequence"),
        }
    }

    /// Decompresses (or clones) the full sequence.
    ///
    /// # Panics
    /// Panics on an [`Unavailable`](Seq::Unavailable) sequence.
    pub fn to_vec(&mut self) -> Vec<u64> {
        match self {
            Seq::Raw(v) => v.clone(),
            Seq::Compressed(s) => s.decompress(),
            Seq::Unavailable(_) => panic!("read from unavailable (salvage-lost) sequence"),
        }
    }

    /// Decompresses the full sequence **without** moving the cursor:
    /// tier-2 streams are cloned first and the clone is consumed. This
    /// is what lets the whole-trace query engine extract from a shared
    /// `&Wet` on many threads at once — every worker snapshots the
    /// streams it needs instead of fighting over one cursor.
    ///
    /// # Panics
    /// Panics on an [`Unavailable`](Seq::Unavailable) sequence.
    pub fn to_vec_snapshot(&self) -> Vec<u64> {
        match self {
            Seq::Raw(v) => v.clone(),
            Seq::Compressed(s) => s.clone().decompress(),
            Seq::Unavailable(_) => panic!("read from unavailable (salvage-lost) sequence"),
        }
    }

    /// Checked snapshot decompression for untrusted or salvaged data:
    /// `None` when the sequence is unavailable or its compressed form
    /// is internally inconsistent (claimed length exceeds stored
    /// entries). Never panics and never allocates beyond the data
    /// actually present. The cursor is untouched (tier-2 work happens
    /// on a clone).
    pub fn try_to_vec_snapshot(&self) -> Option<Vec<u64>> {
        match self {
            Seq::Raw(v) => Some(v.clone()),
            Seq::Compressed(s) => s.clone().try_decompress(),
            Seq::Unavailable(_) => None,
        }
    }

    /// Converts to tier-2 form in place (no-op if already compressed or
    /// unavailable).
    pub fn compress(&mut self, cfg: &StreamConfig) {
        if let Seq::Raw(v) = self {
            let s = CompressedStream::compress_auto(v, cfg);
            *self = Seq::Compressed(s);
        }
    }

    /// Tier-2 payload bytes; for raw sequences, the bytes tier-2 would
    /// be measured at (computed by compressing a clone). Unavailable
    /// sequences account as zero.
    pub fn compressed_bytes(&self, cfg: &StreamConfig) -> u64 {
        match self {
            Seq::Raw(v) => CompressedStream::compress_auto(v, cfg).compressed_bytes(),
            Seq::Compressed(s) => s.compressed_bytes(),
            Seq::Unavailable(_) => 0,
        }
    }

    /// Searches a **sorted** sequence for `target`, returning its
    /// position. Walks the cursor from its current position (galloping
    /// toward the target), so repeated nearby lookups are cheap.
    /// Unavailable sequences report no match.
    pub fn find_sorted(&mut self, target: u64) -> Option<usize> {
        let n = self.len();
        if n == 0 {
            return None;
        }
        match self {
            Seq::Raw(v) => v.binary_search(&target).ok(),
            Seq::Compressed(s) => {
                // Start near the cursor, then walk monotonically.
                let mut i = s.window_start().clamp(0, n as isize - 1) as usize;
                let mut vi = s.get(i);
                while vi < target && i + 1 < n {
                    i += 1;
                    vi = s.get(i);
                }
                while vi > target && i > 0 {
                    i -= 1;
                    vi = s.get(i);
                }
                (vi == target).then_some(i)
            }
            Seq::Unavailable(_) => None,
        }
    }
}

impl From<Vec<u64>> for Seq {
    fn from(v: Vec<u64>) -> Self {
        Seq::Raw(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StreamConfig {
        StreamConfig::default()
    }

    #[test]
    fn raw_and_compressed_agree() {
        let data: Vec<u64> = (0..500).map(|i| i * 7 % 64).collect();
        let mut raw = Seq::Raw(data.clone());
        let mut comp = Seq::Raw(data.clone());
        comp.compress(&cfg());
        assert!(matches!(comp, Seq::Compressed(_)));
        assert_eq!(raw.len(), comp.len());
        for i in [0usize, 499, 250, 10, 499, 0] {
            assert_eq!(raw.get(i), comp.get(i), "index {i}");
        }
        assert_eq!(comp.to_vec(), data);
    }

    #[test]
    fn find_sorted_hits_and_misses() {
        let data: Vec<u64> = (0..200).map(|i| i * 3).collect();
        for make in [false, true] {
            let mut s = Seq::Raw(data.clone());
            if make {
                s.compress(&cfg());
            }
            assert_eq!(s.find_sorted(0), Some(0));
            assert_eq!(s.find_sorted(33), Some(11));
            assert_eq!(s.find_sorted(597), Some(199));
            assert_eq!(s.find_sorted(34), None);
            assert_eq!(s.find_sorted(598), None);
            // Lookups in both directions after a far jump.
            assert_eq!(s.find_sorted(3), Some(1));
            assert_eq!(s.find_sorted(300), Some(100));
        }
    }

    #[test]
    fn compress_is_idempotent() {
        let mut s = Seq::Raw(vec![1, 2, 3]);
        s.compress(&cfg());
        let bytes = s.compressed_bytes(&cfg());
        s.compress(&cfg());
        assert_eq!(s.compressed_bytes(&cfg()), bytes);
    }

    #[test]
    fn empty_sequence() {
        let mut s = Seq::Raw(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.find_sorted(5), None);
        s.compress(&cfg());
        assert_eq!(s.len(), 0);
    }
}
