//! WET size accounting across compression tiers.
//!
//! Units follow the paper's conceptual model with 64-bit values: a
//! timestamp or value costs 8 bytes, a dependence-edge label pair costs
//! 16 bytes, a value-pattern index costs 4 bytes. "Original" sizes are
//! what the fully uncompressed WET definition of §2 would occupy (a
//! `<ts, val>` element per *statement* execution, a labeled edge
//! instance per dynamic dependence); tier-1 reflects the customized
//! compression of §3; tier-2 the stream compression of §4.

/// Per-category, per-tier byte counts for one WET.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WetSizes {
    /// Uncompressed timestamp labels (8 B x statement executions).
    pub orig_ts: u64,
    /// Uncompressed value labels (8 B x def-port executions).
    pub orig_vals: u64,
    /// Uncompressed edge labels (16 B x dynamic dependences, control
    /// dependences counted per statement as in the §2 definition).
    pub orig_edges: u64,
    /// Tier-1 timestamp bytes (8 B x path executions).
    pub t1_ts: u64,
    /// Tier-1 value bytes (patterns at 4 B/index + unique values at 8 B).
    pub t1_vals: u64,
    /// Tier-1 edge bytes (16 B per stored pair after local-edge
    /// inference, block-level aggregation, and label sharing).
    pub t1_edges: u64,
    /// Tier-2 timestamp bytes (compressed streams).
    pub t2_ts: u64,
    /// Tier-2 value bytes.
    pub t2_vals: u64,
    /// Tier-2 edge bytes.
    pub t2_edges: u64,
}

impl WetSizes {
    /// Total original size.
    pub fn orig_total(&self) -> u64 {
        self.orig_ts + self.orig_vals + self.orig_edges
    }

    /// Total after tier-1.
    pub fn t1_total(&self) -> u64 {
        self.t1_ts + self.t1_vals + self.t1_edges
    }

    /// Total after tier-2.
    pub fn t2_total(&self) -> u64 {
        self.t2_ts + self.t2_vals + self.t2_edges
    }

    /// Overall compression ratio original/tier-2 (the paper's
    /// "Orig./Comp." column of Table 1).
    pub fn ratio(&self) -> f64 {
        ratio(self.orig_total(), self.t2_total())
    }

    /// Ratio original/tier-1.
    pub fn ratio_t1(&self) -> f64 {
        ratio(self.orig_total(), self.t1_total())
    }
}

/// `a / b` guarding against a zero denominator.
pub fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Which size category a tier-2 stream is accounted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamClass {
    /// Node timestamp sequences → [`WetSizes::t2_ts`].
    Ts,
    /// Value patterns and unique values → [`WetSizes::t2_vals`].
    Vals,
    /// Edge labels (intra `ks`, pooled `dst`/`src`) → [`WetSizes::t2_edges`].
    Edges,
}

impl StreamClass {
    /// Short class name used in metrics labels and size tables.
    pub fn label(self) -> &'static str {
        match self {
            StreamClass::Ts => "ts",
            StreamClass::Vals => "vals",
            StreamClass::Edges => "edges",
        }
    }
}

/// Displays as the short class name: `ts`, `vals`, or `edges`.
impl std::fmt::Display for StreamClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Reducible tier-2 compression accounting: per-method stream counts
/// plus compressed bytes per [`StreamClass`].
///
/// Accumulated independently per compressed stream (on whichever
/// worker compressed it) and merged after join; every operation is a
/// commutative sum, so the merged result is identical no matter how
/// streams were distributed across workers — including the
/// one-worker sequential case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressStats {
    /// Number of tier-2 streams by chosen method name.
    pub methods: std::collections::BTreeMap<String, u64>,
    /// Compressed timestamp bytes.
    pub t2_ts: u64,
    /// Compressed value bytes.
    pub t2_vals: u64,
    /// Compressed edge-label bytes.
    pub t2_edges: u64,
}

impl CompressStats {
    /// Accounts one sequence under `class`. Raw (tier-1) sequences are
    /// ignored — only compressed streams carry a method and a payload.
    pub fn note(&mut self, class: StreamClass, seq: &crate::seq::Seq) {
        if let crate::seq::Seq::Compressed(c) = seq {
            *self.methods.entry(c.method().name()).or_default() += 1;
            let bytes = c.compressed_bytes();
            match class {
                StreamClass::Ts => self.t2_ts += bytes,
                StreamClass::Vals => self.t2_vals += bytes,
                StreamClass::Edges => self.t2_edges += bytes,
            }
        }
    }

    /// Folds another accumulation into this one.
    pub fn merge(&mut self, other: CompressStats) {
        for (m, c) in other.methods {
            *self.methods.entry(m).or_default() += c;
        }
        self.t2_ts += other.t2_ts;
        self.t2_vals += other.t2_vals;
        self.t2_edges += other.t2_edges;
    }

    /// Writes the totals into size/stat records, **replacing** any
    /// previous tier-2 accounting (so re-running compression recomputes
    /// rather than re-accumulates).
    pub fn apply(self, sizes: &mut WetSizes, stats: &mut WetStats) {
        sizes.t2_ts = self.t2_ts;
        sizes.t2_vals = self.t2_vals;
        sizes.t2_edges = self.t2_edges;
        stats.methods = self.methods;
    }
}

/// Human-readable one-line summary, e.g.
/// `t2 bytes: ts=120 vals=80 edges=40 | methods: fcm1 x3, last8 x2`.
impl std::fmt::Display for CompressStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t2 bytes: ts={} vals={} edges={}", self.t2_ts, self.t2_vals, self.t2_edges)?;
        if !self.methods.is_empty() {
            write!(f, " | methods:")?;
            for (i, (m, c)) in self.methods.iter().enumerate() {
                write!(f, "{} {m} x{c}", if i == 0 { "" } else { "," })?;
            }
        }
        Ok(())
    }
}

/// Construction/query statistics reported alongside sizes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WetStats {
    /// Executed statements covered by the WET.
    pub stmts_executed: u64,
    /// Path executions (= timestamps generated).
    pub paths_executed: u64,
    /// Block executions (= timestamps a block-granularity WET would
    /// generate; the Fig. 2 comparison).
    pub blocks_executed: u64,
    /// Materialized WET nodes (distinct executed paths).
    pub nodes: u64,
    /// Dependence edges stored (after intra-node inference).
    pub edges: u64,
    /// Intra-node dependence edges whose labels were fully inferred
    /// away.
    pub inferred_edges: u64,
    /// Label sequences shared away by deduplication.
    pub shared_label_seqs: u64,
    /// Total dynamic dependences recorded (DD + CD at block level).
    pub dynamic_deps: u64,
    /// Number of tier-2 streams by chosen method name.
    pub methods: std::collections::BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratios() {
        let s = WetSizes {
            orig_ts: 800,
            orig_vals: 100,
            orig_edges: 100,
            t1_ts: 80,
            t1_vals: 60,
            t1_edges: 40,
            t2_ts: 8,
            t2_vals: 30,
            t2_edges: 12,
        };
        assert_eq!(s.orig_total(), 1000);
        assert_eq!(s.t1_total(), 180);
        assert_eq!(s.t2_total(), 50);
        assert!((s.ratio() - 20.0).abs() < 1e-9);
        assert!((s.ratio_t1() - 1000.0 / 180.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominator_is_zero() {
        assert_eq!(ratio(5, 0), 0.0);
    }
}
