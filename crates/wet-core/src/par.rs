//! Minimal scoped worker pool for the WET pipeline's embarrassingly
//! parallel phases.
//!
//! The hot phases — tier-2 stream compression, §3.2 value grouping,
//! whole-trace extraction, and the bench harness's per-workload runs —
//! are loops over fully independent items. This module fans such loops
//! out over [`std::thread::scope`] workers with no dependencies beyond
//! the standard library (the build environment is offline, so rayon is
//! not an option).
//!
//! Work distribution is a chunked shared queue: workers repeatedly
//! claim a small batch of items under a mutex, so uneven item costs
//! (one giant stream among thousands of small ones) still balance.
//! Each worker keeps its results tagged with the item index; after the
//! scope joins, results are assembled **in index order**, so the
//! output of every function here is identical to the sequential loop
//! it replaces regardless of thread count or scheduling. With
//! `threads <= 1` the loop runs inline on the caller's thread — the
//! sequential path is the parallel path with one worker, not separate
//! code to keep in sync.
//!
//! Observability: each spawn captures a [`wet_obs::handoff`] from the
//! caller so workers inherit its profiling enablement and parent span;
//! worker spans are buffered thread-locally and merged into the global
//! collector at pool join (when the scope's threads exit).

use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "all available
/// cores"; anything else is used as given. Always at least 1.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Batch size for queue claims: large enough to keep mutex traffic
/// negligible, small enough that a straggler batch can't unbalance the
/// pool.
fn chunk_size(items: usize, threads: usize) -> usize {
    (items / (threads * 8)).clamp(1, 1024)
}

/// Runs `f` over every item of `items`, mutably, on up to `threads`
/// workers, returning the results in item order.
///
/// Equivalent to `items.iter_mut().enumerate().map(|(i, t)| f(i, t))`
/// — and is exactly that when `threads <= 1` or there are fewer than
/// two items.
///
/// # Panics
/// Propagates the first worker panic after all workers have joined.
pub fn map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = chunk_size(n, threads);
    // The mutex hands out `(index, &mut T)` pairs; the borrows outlive
    // the lock (they borrow the slice, not the guard), so workers
    // process their batch without holding the queue.
    let queue = Mutex::new(items.iter_mut().enumerate());
    let obs = wet_obs::handoff();
    let (queue, f) = (&queue, &f);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let _obs = wet_obs::attach(obs);
                    let _span = wet_obs::span!("par.worker");
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut batch: Vec<(usize, &mut T)> = Vec::with_capacity(chunk);
                    loop {
                        {
                            // A poisoned queue only means another worker
                            // panicked; the slice iterator holds no
                            // invariant a panic could break, so keep
                            // draining — the original panic is the one
                            // re-raised at pool join.
                            let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                            batch.extend(q.by_ref().take(chunk));
                        }
                        if batch.is_empty() {
                            return out;
                        }
                        for (i, t) in batch.drain(..) {
                            out.push((i, f(i, t)));
                        }
                    }
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(p) => parts.push(p),
                Err(e) => panic = panic.or(Some(e)),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
    });
    reassemble(n, parts)
}

/// Runs `f` over every item of `items` (shared access) on up to
/// `threads` workers, returning the results in item order.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_ctx(threads, items, || (), |(), i, t| f(i, t))
}

/// Like [`map`], but each worker owns a context built by `init` —
/// typically a memoization cache — threaded through its items as
/// `f(&mut ctx, index, item)`.
///
/// The context must be pure acceleration: results may not depend on
/// which items share a worker, or the index-order guarantee stops
/// implying value equality with the sequential loop (which uses one
/// context for everything).
pub fn map_ctx<T, R, C, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 {
        let mut ctx = init();
        return items.iter().enumerate().map(|(i, t)| f(&mut ctx, i, t)).collect();
    }
    let chunk = chunk_size(n, threads);
    let queue = Mutex::new(items.iter().enumerate());
    let obs = wet_obs::handoff();
    let (queue, init, f) = (&queue, &init, &f);
    let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(move || {
                    let _obs = wet_obs::attach(obs);
                    let _span = wet_obs::span!("par.worker");
                    let mut ctx = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut batch: Vec<(usize, &T)> = Vec::with_capacity(chunk);
                    loop {
                        {
                            // See map_mut: ignore poisoning so the first
                            // panic, not a PoisonError, reaches the caller.
                            let mut q = queue.lock().unwrap_or_else(|e| e.into_inner());
                            batch.extend(q.by_ref().take(chunk));
                        }
                        if batch.is_empty() {
                            return out;
                        }
                        for (i, t) in batch.drain(..) {
                            out.push((i, f(&mut ctx, i, t)));
                        }
                    }
                })
            })
            .collect();
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(p) => parts.push(p),
                Err(e) => panic = panic.or(Some(e)),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
    });
    reassemble(n, parts)
}

fn reassemble<R>(n: usize, parts: Vec<Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in parts.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots.into_iter().map(|o| o.expect("every index processed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_mut_matches_sequential_for_all_thread_counts() {
        let base: Vec<u64> = (0..1000).collect();
        let mut expected = base.clone();
        let exp_out: Vec<u64> =
            expected.iter_mut().enumerate().map(|(i, v)| { *v *= 3; *v + i as u64 }).collect();
        for threads in [1, 2, 4, 8, 64] {
            let mut items = base.clone();
            let out = map_mut(threads, &mut items, |i, v| {
                *v *= 3;
                *v + i as u64
            });
            assert_eq!(items, expected, "threads={threads}");
            assert_eq!(out, exp_out, "threads={threads}");
        }
    }

    #[test]
    fn map_preserves_index_order() {
        let items: Vec<usize> = (0..501).collect();
        let out = map(4, &items, |i, &v| {
            assert_eq!(i, v);
            v * v
        });
        assert_eq!(out, items.iter().map(|v| v * v).collect::<Vec<_>>());
    }

    #[test]
    fn map_ctx_reuses_context_within_worker() {
        // The context counts calls; totals across workers must cover
        // every item exactly once.
        let items: Vec<u32> = (0..100).collect();
        let out = map_ctx(3, &items, || 0usize, |calls, _, &v| {
            *calls += 1;
            (v, *calls)
        });
        assert_eq!(out.len(), 100);
        // Values arrive in order even though per-worker call counts
        // interleave arbitrarily.
        for (i, &(v, calls)) in out.iter().enumerate() {
            assert_eq!(v as usize, i);
            assert!(calls >= 1);
        }
    }

    #[test]
    fn empty_and_single_item() {
        let mut none: [u8; 0] = [];
        assert!(map_mut(8, &mut none, |_, _| 0).is_empty());
        let mut one = [5u8];
        assert_eq!(map_mut(8, &mut one, |_, v| *v as usize), vec![5]);
    }

    #[test]
    fn effective_threads_resolution() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    #[should_panic(expected = "kaboom")]
    fn map_mut_worker_panics_propagate() {
        // The panicking worker dies with a claimed batch; the others
        // must drain the rest and the pool must re-raise the original
        // panic at join — not deadlock, and not a PoisonError.
        let mut items: Vec<u32> = (0..256).collect();
        map_mut(8, &mut items, |_, v| {
            if *v == 200 {
                panic!("kaboom");
            }
            *v
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        map(4, &items, |_, &v| {
            if v == 33 {
                panic!("boom");
            }
            v
        });
    }
}
