//! Property tests for `fsck --repair`'s core guarantee: salvage is
//! idempotent and never drops recoverable data.
//!
//! For an arbitrary seeded mutation of a valid `.wetz` container:
//!
//! 1. **Idempotency** — salvaging the damaged image and writing the
//!    result produces a container that salvages *clean*, and repairing
//!    that repaired container is byte-identical (a second `fsck
//!    --repair` pass can never change the file again).
//! 2. **No data loss** — any section whose checksum still verifies in
//!    the damaged image survives the repair: the scanner must not
//!    report it corrupt, and the repaired container must carry a
//!    checksum-valid section under the same tag.
//!
//! Mutations come from the same seeded corpus the fault drill uses
//! ([`wet_core::fault::random_mutation`]): bit flips, truncations at
//! random and at section boundaries, inflated length prefixes, and
//! shuffled section order.

use proptest::prelude::*;
use std::collections::HashSet;
use wet_core::fault::{random_mutation, FaultRng, Vfs};
use wet_core::{Wet, WetBuilder, WetConfig};
use wet_interp::{Interp, InterpConfig};
use wet_ir::ballarus::BallLarus;
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

/// A small looping program exercising loads, stores, and arithmetic —
/// enough to populate every container section.
fn looping_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let (e, h, b, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
    let (n, i, c, a, w, y) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(n);
    f.block(e).store(0i64, 5i64);
    f.block(e).store(1i64, 9i64);
    f.block(e).movi(i, 0);
    f.block(e).jump(h);
    f.block(h).bin(BinOp::Lt, c, i, n);
    f.block(h).branch(c, b, x);
    f.block(b).bin(BinOp::Rem, a, i, 2i64);
    f.block(b).load(w, a);
    f.block(b).bin(BinOp::Add, y, w, Operand::Reg(i));
    f.block(b).store(a, y);
    f.block(b).bin(BinOp::Add, i, i, 1i64);
    f.block(b).jump(h);
    f.block(x).out(i);
    f.block(x).ret(Some(Operand::Reg(i)));
    let main = f.finish();
    pb.finish(main).unwrap()
}

/// Serialized tier-2 container for the test program.
fn baseline() -> Vec<u8> {
    let p = looping_program();
    let bl = BallLarus::new(&p);
    let mut builder = WetBuilder::new(&p, &bl, WetConfig::default());
    Interp::new(&p, &bl, InterpConfig::default())
        .run(&[60], &mut builder)
        .expect("run");
    let mut wet = builder.finish();
    wet.compress();
    let mut bytes = Vec::new();
    wet.write_to(&mut bytes).expect("serialize");
    bytes
}

/// Tags whose checksum (and payload) still verify in `bytes`.
fn intact_tags(bytes: &[u8]) -> Option<HashSet<String>> {
    let (_, report) = Wet::read_salvaging(&mut &bytes[..]).ok()?;
    Some(
        report
            .sections
            .iter()
            .filter(|s| s.status.is_ok())
            .map(|s| s.tag.clone())
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn repair_is_idempotent_and_never_loses_an_intact_section(seed in any::<u64>()) {
        let base = baseline();
        let mut rng = FaultRng::new(seed);
        let (what, damaged) = random_mutation(&base, &mut rng);

        // Some mutations destroy the container beyond salvage (bad
        // magic, BIND lost): a typed failure is the correct outcome
        // there, and the properties below are about the successes.
        let Ok((salvaged, report1)) = Wet::read_salvaging(&mut damaged.as_slice()) else {
            return Ok(());
        };

        // Property 2a: the scanner never calls an intact section
        // corrupt — the damage report covers only real damage.
        let before = intact_tags(&damaged).expect("salvage just succeeded");

        // First repair pass: write the salvaged WET back out.
        let mut repaired1 = Vec::new();
        salvaged.write_to(&mut repaired1).expect("serialize salvage");

        // Property 1a: the repaired container is clean.
        let (salvaged2, report2) = Wet::read_salvaging(&mut repaired1.as_slice())
            .unwrap_or_else(|e| panic!("repaired container unreadable after `{what}`: {e}"));
        prop_assert!(
            report2.is_clean(),
            "repair of `{what}` left problems: {:?}",
            report2.first_problem()
        );

        // Property 1b: a second repair pass is byte-identical.
        let mut repaired2 = Vec::new();
        salvaged2.write_to(&mut repaired2).expect("serialize second salvage");
        prop_assert_eq!(
            &repaired1,
            &repaired2,
            "second `fsck --repair` changed the bytes after `{}`",
            what
        );

        // Property 2b: every checksum-intact section of the damaged
        // image survives into the repaired container.
        let after = intact_tags(&repaired1).expect("clean container salvages");
        for tag in &before {
            prop_assert!(
                after.contains(tag),
                "repair after `{}` dropped intact section {}",
                what,
                tag
            );
        }

        // The recovered/lost ledger never counts a sequence both ways.
        prop_assert!(report1.seqs_recovered + report1.seqs_lost >= report1.seqs_recovered);
    }

    /// The same pipeline through the `Io`-layer path helpers used by
    /// the store's repair worker and `wet fsck --repair`: damaged file
    /// in, repaired file out, second pass byte-identical on disk.
    #[test]
    fn path_repair_matches_in_memory_repair(seed in any::<u64>()) {
        let base = baseline();
        let mut rng = FaultRng::new(seed ^ 0xd15c);
        let (what, damaged) = random_mutation(&base, &mut rng);
        let dir = std::env::temp_dir().join(format!(
            "wet-repair-prop-{}-{seed:x}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("damaged.wetz");
        let out = dir.join("repaired.wetz");
        std::fs::write(&src, &damaged).unwrap();

        let vfs = Vfs::real();
        match Wet::read_salvaging_path(&src, &vfs) {
            Ok((wet, _)) => {
                wet.write_to_path(&out, &vfs).expect("write repaired");
                let on_disk = std::fs::read(&out).unwrap();
                let mut in_memory = Vec::new();
                let (w2, _) = Wet::read_salvaging(&mut damaged.as_slice())
                    .expect("in-memory salvage agrees with path salvage");
                w2.write_to(&mut in_memory).unwrap();
                prop_assert_eq!(
                    on_disk,
                    in_memory,
                    "path repair diverged from in-memory repair after `{}`",
                    what
                );
                // No temp file left behind by the atomic write.
                prop_assert!(!dir.join("repaired.wetz.tmp").exists());
            }
            Err(_) => {
                // Unsalvageable: the atomic writer must not have
                // published anything.
                prop_assert!(!out.exists());
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
