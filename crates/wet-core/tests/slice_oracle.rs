//! WET slices vs the reference dynamic slicer, element by element.
//!
//! For every statement instance of several programs, the backward (and
//! for a subset, forward) WET slice computed over the *compressed*
//! representation must equal the slice computed by direct traversal of
//! the uncompressed recorded trace. Slices are compared as sets of
//! `(stmt, timestamp)` pairs, which identify dynamic instances
//! uniquely.

use std::collections::BTreeSet;
use wet_core::query::{backward_slice, forward_slice, SliceSpec, WetSliceElem};
use wet_core::{NodeId, TsMode, Wet, WetBuilder, WetConfig};
use wet_interp::{Interp, InterpConfig, Recorder, RefSlicer, SliceElem, SliceKinds};
use wet_ir::ballarus::BallLarus;
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::{Program, StmtId};

fn build(p: &Program, inputs: &[i64], config: WetConfig, tier2: bool) -> (Wet, Recorder) {
    let bl = BallLarus::new(p);
    let mut builder = WetBuilder::new(p, &bl, config);
    let mut rec = Recorder::new();
    let mut sink = (&mut builder, &mut rec);
    Interp::new(p, &bl, InterpConfig::default()).run(inputs, &mut sink).expect("run");
    let mut wet = builder.finish();
    if tier2 {
        wet.compress();
    }
    (wet, rec)
}

/// Reference slice as (stmt, ts) pairs.
fn ref_slice(rec: &Recorder, stmt: StmtId, instance: u64, forward: bool) -> BTreeSet<(StmtId, u64)> {
    let slicer = RefSlicer::new(rec);
    let idx = rec.stmt_index();
    let elem = SliceElem { stmt, instance };
    let s = if forward {
        slicer.forward(elem, SliceKinds::default())
    } else {
        slicer.backward(elem, SliceKinds::default())
    };
    s.elems
        .iter()
        .map(|e| {
            let i = idx[&(e.stmt, e.instance)];
            (e.stmt, rec.stmts[i].ev.ts)
        })
        .collect()
}

/// Maps a recorded instance to its WET address `(node, k)`.
fn wet_elem(wet: &Wet, rec: &Recorder, stmt: StmtId, instance: u64) -> WetSliceElem {
    let idx = rec.stmt_index();
    let ts = rec.stmts[idx[&(stmt, instance)]].ev.ts;
    // Find the path record with this ts, then its node and k.
    let pr = rec.paths.iter().find(|p| p.ts == ts).expect("path covering ts");
    let node = wet.node_for_path(pr.func, pr.path_id).expect("node");
    // k = how many earlier executions of this node have smaller ts.
    let k = rec
        .paths
        .iter()
        .filter(|q| q.func == pr.func && q.path_id == pr.path_id && q.ts < ts)
        .count() as u32;
    WetSliceElem { node, stmt, k }
}

fn check_all_backward_slices(p: &Program, inputs: &[i64], config: WetConfig, tier2: bool) {
    let (mut wet, rec) = build(p, inputs, config, tier2);
    for (i, r) in rec.stmts.iter().enumerate() {
        // Sample to keep runtime sane: every 7th instance.
        if i % 7 != 0 {
            continue;
        }
        let expect = ref_slice(&rec, r.ev.stmt, r.ev.instance, false);
        let elem = wet_elem(&wet, &rec, r.ev.stmt, r.ev.instance);
        let got = backward_slice(&mut wet, p, elem, SliceSpec::default()).unwrap();
        assert_eq!(
            got.stamped, expect,
            "backward slice mismatch at {}#{} (ts {})",
            r.ev.stmt, r.ev.instance, r.ev.ts
        );
    }
}

/// Program with branches, a loop, memory, and a helper call.
fn mixed_program() -> Program {
    let mut pb = ProgramBuilder::new();

    let mut g = pb.function("clamp", 2);
    let ge = g.entry_block();
    let (gt, gf, gj) = (g.new_block(), g.new_block(), g.new_block());
    let (a, b, c, r) = (g.param(0), g.param(1), g.reg(), g.reg());
    g.block(ge).bin(BinOp::Gt, c, a, b);
    g.block(ge).branch(c, gt, gf);
    g.block(gt).mov(r, b);
    g.block(gt).jump(gj);
    g.block(gf).mov(r, a);
    g.block(gf).jump(gj);
    g.block(gj).ret(Some(Operand::Reg(r)));
    let clamp = g.finish();

    let mut f = pb.function("main", 0);
    let (e, h, body, cont, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    let (n, i, s, c, t, u) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(n);
    f.block(e).movi(i, 0);
    f.block(e).movi(s, 0);
    f.block(e).store(50i64, 1000i64);
    f.block(e).jump(h);
    f.block(h).bin(BinOp::Lt, c, i, n);
    f.block(h).branch(c, body, x);
    f.block(body).bin(BinOp::Mul, t, i, i);
    f.block(body).call(clamp, vec![Operand::Reg(t), Operand::Imm(20)], Some(u), cont);
    f.block(cont).bin(BinOp::Add, s, s, u);
    f.block(cont).store(i, s);
    f.block(cont).bin(BinOp::Add, i, i, 1i64);
    f.block(cont).jump(h);
    f.block(x).load(t, 3i64);
    f.block(x).out(t);
    f.block(x).out(s);
    f.block(x).ret(Some(Operand::Reg(s)));
    let main = f.finish();
    pb.finish(main).unwrap()
}

#[test]
fn backward_slices_match_reference_tier1() {
    check_all_backward_slices(&mixed_program(), &[9], WetConfig::default(), false);
}

#[test]
fn backward_slices_match_reference_tier2() {
    check_all_backward_slices(&mixed_program(), &[9], WetConfig::default(), true);
}

#[test]
fn backward_slices_match_reference_global_mode() {
    let cfg = WetConfig { ts_mode: TsMode::Global, ..Default::default() };
    check_all_backward_slices(&mixed_program(), &[9], cfg, true);
}

#[test]
fn backward_slices_match_without_tier1_optimizations() {
    let cfg = WetConfig {
        group_values: false,
        infer_local_edges: false,
        share_edge_labels: false,
        ..Default::default()
    };
    check_all_backward_slices(&mixed_program(), &[7], cfg, true);
}

#[test]
fn forward_slices_match_reference() {
    let p = mixed_program();
    let (mut wet, rec) = build(&p, &[6], WetConfig::default(), true);
    for (i, r) in rec.stmts.iter().enumerate() {
        if i % 11 != 0 {
            continue;
        }
        let expect = ref_slice(&rec, r.ev.stmt, r.ev.instance, true);
        let elem = wet_elem(&wet, &rec, r.ev.stmt, r.ev.instance);
        let got = forward_slice(&mut wet, &p, elem, SliceSpec::default()).unwrap();
        assert_eq!(
            got.stamped, expect,
            "forward slice mismatch at {}#{} (ts {})",
            r.ev.stmt, r.ev.instance, r.ev.ts
        );
    }
}

#[test]
fn data_only_slices_are_subsets() {
    let p = mixed_program();
    let (mut wet, rec) = build(&p, &[8], WetConfig::default(), true);
    let r = &rec.stmts[rec.stmts.len() - 3];
    let elem = wet_elem(&wet, &rec, r.ev.stmt, r.ev.instance);
    let full = backward_slice(&mut wet, &p, elem, SliceSpec::default()).unwrap();
    let data_only = backward_slice(&mut wet, &p, elem, SliceSpec { data: true, control: false }).unwrap();
    assert!(data_only.stamped.is_subset(&full.stamped));
    assert!(data_only.len() < full.len(), "control deps add elements");
}

#[test]
fn slice_of_first_instruction_is_singleton() {
    let p = mixed_program();
    let (mut wet, rec) = build(&p, &[3], WetConfig::default(), true);
    // The very first `input` has no producers and no control parent.
    let first = &rec.stmts[0];
    let elem = wet_elem(&wet, &rec, first.ev.stmt, first.ev.instance);
    let s = backward_slice(&mut wet, &p, elem, SliceSpec::default()).unwrap();
    assert_eq!(s.len(), 1);
    let node0 = NodeId(0);
    assert!(wet.node(node0).stmt_pos(first.ev.stmt).is_some());
}

#[test]
fn partial_traces_from_any_point_match_full_trace() {
    use wet_core::query::{cf_trace_forward, cf_trace_from, locate_ts};
    let p = mixed_program();
    let (mut wet, _rec) = build(&p, &[7], WetConfig::default(), true);
    let full = cf_trace_forward(&mut wet).unwrap();
    let last_ts = full.last().unwrap().ts;
    // From several interior points, forward and backward windows must
    // be exact sub-slices of the full trace.
    for &start in &[1u64, last_ts / 3, last_ts / 2, last_ts - 1, last_ts] {
        let fwd = cf_trace_from(&mut wet, start, 10, true).unwrap();
        let idx = (start - 1) as usize;
        let expect: Vec<_> = full[idx..(idx + 10).min(full.len())].to_vec();
        assert_eq!(fwd, expect, "forward from ts {start}");
        let bwd = cf_trace_from(&mut wet, start, 10, false).unwrap();
        let lo = idx.saturating_sub(9);
        let mut expect: Vec<_> = full[lo..=idx].to_vec();
        expect.reverse();
        assert_eq!(bwd, expect, "backward from ts {start}");
    }
    // Out-of-range timestamps locate nothing.
    assert!(locate_ts(&mut wet, last_ts + 5).is_none());
    assert!(cf_trace_from(&mut wet, 0, 5, true).unwrap().is_empty());
}
