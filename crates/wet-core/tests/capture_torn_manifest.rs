//! Property test: `Capture::resume` after an arbitrarily torn MANIFEST.
//!
//! The manifest is a convenience checkpoint, not the source of truth —
//! resume trusts the segment files (length + CRC verified) and rewrites
//! the manifest to match. So *any* damage to MANIFEST while the capture
//! is interrupted — truncation at any offset, a flipped byte anywhere,
//! wholesale garbage, or outright deletion — must leave resume able to
//! finish the capture and seal a trace byte-identical to an
//! uninterrupted run. The program reads the nondeterministic clock, so
//! the recovered NDET stream rides through the tear as well.

use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use wet_core::capture::{fsck_dir, read_manifest, seal, Capture};
use wet_core::{WetBuilder, WetConfig};
use wet_interp::{Interp, InterpConfig, NdetSource, ScriptedSource};
use wet_ir::ballarus::BallLarus;
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

/// A looping program whose body folds the nondeterministic clock into a
/// small memory table — enough work to span several capture segments.
fn clocked_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let (e, h, b, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
    let (n, i, c, a, w, t) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(n);
    f.block(e).movi(i, 0);
    f.block(e).jump(h);
    f.block(h).bin(BinOp::Lt, c, i, n);
    f.block(h).branch(c, b, x);
    f.block(b).read_clock(t);
    f.block(b).bin(BinOp::Rem, a, i, 8i64);
    f.block(b).load(w, a);
    f.block(b).bin(BinOp::Add, w, w, Operand::Reg(t));
    f.block(b).store(a, w);
    f.block(b).bin(BinOp::Add, i, i, 1i64);
    f.block(b).jump(h);
    f.block(x).out(i);
    f.block(x).ret(Some(Operand::Reg(i)));
    let main = f.finish();
    pb.finish(main).unwrap()
}

fn script() -> ScriptedSource {
    ScriptedSource::new(HashMap::new(), Vec::new(), Vec::new(), 1_000, 3)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("wet-torn-manifest-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The damage proptest inflicts on MANIFEST.
#[derive(Debug, Clone)]
enum Tear {
    /// Truncate to `keep_permille/1000` of the original length.
    Truncate { keep_permille: u16 },
    /// Flip `bit` of the byte at `pos % len`.
    FlipByte { pos: u16, bit: u8 },
    /// Replace the whole file with `len` seeded garbage bytes.
    Garbage { len: u16, seed: u64 },
    /// Delete the file entirely.
    Delete,
}

fn tear_strategy() -> impl Strategy<Value = Tear> {
    prop_oneof![
        (0u16..1000).prop_map(|keep_permille| Tear::Truncate { keep_permille }),
        (any::<u16>(), 0u8..8).prop_map(|(pos, bit)| Tear::FlipByte { pos, bit }),
        (0u16..512, any::<u64>()).prop_map(|(len, seed)| Tear::Garbage { len, seed }),
        Just(Tear::Delete),
    ]
}

fn apply_tear(path: &std::path::Path, tear: &Tear) {
    let bytes = std::fs::read(path).unwrap();
    assert!(!bytes.is_empty(), "a flushed capture must have a manifest");
    match tear {
        Tear::Truncate { keep_permille } => {
            let keep = bytes.len() * *keep_permille as usize / 1000;
            std::fs::write(path, &bytes[..keep]).unwrap();
        }
        Tear::FlipByte { pos, bit } => {
            let mut m = bytes;
            let i = *pos as usize % m.len();
            m[i] ^= 1 << bit;
            std::fs::write(path, &m).unwrap();
        }
        Tear::Garbage { len, seed } => {
            let mut rng = wet_core::fault::FaultRng::new(*seed);
            let junk: Vec<u8> = (0..*len).map(|_| rng.below(256) as u8).collect();
            std::fs::write(path, &junk).unwrap();
        }
        Tear::Delete => std::fs::remove_file(path).unwrap(),
    }
}

/// Reference bytes: one uninterrupted in-memory build of the same run.
fn reference_bytes(p: &Program, inputs: &[i64], config: &WetConfig) -> Vec<u8> {
    let bl = BallLarus::new(p);
    let mut b = WetBuilder::new(p, &bl, config.clone());
    let mut src = script();
    Interp::new(p, &bl, InterpConfig::default()).run_with(inputs, &mut src, &mut b).unwrap();
    let mut out = Vec::new();
    b.finish().write_to(&mut out).unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn resume_survives_any_manifest_tear(
        tear in tear_strategy(),
        n in 40i64..160,
        case in 0u32..1_000_000,
    ) {
        let p = clocked_program();
        let mut config = WetConfig::default();
        config.capture.segment_interval = 8;
        let inputs = [n];
        let reference = reference_bytes(&p, &inputs, &config);
        let bl = BallLarus::new(&p);

        let dir = fresh_dir(&format!("case-{case}"));
        // Interrupted capture: the run completes but the process "dies"
        // before finish(), so the manifest on disk says unfinished.
        let mut cap = Capture::create(&p, &bl, config.clone(), &dir).unwrap();
        let mut src = script();
        Interp::new(&p, &bl, InterpConfig::default())
            .run_with(&inputs, &mut src, &mut cap)
            .unwrap();
        drop(cap);

        apply_tear(&dir.join("MANIFEST"), &tear);

        // Resume must come back from whatever the tear left behind,
        // re-derive the checkpoint from the segment files, and land on
        // the exact bytes of the uninterrupted run.
        let mut cap = Capture::resume(&p, &bl, &dir).unwrap();
        let recovered = cap.recovered_ndet().len();
        prop_assert!(
            cap.resume_ts() == 0 || recovered > 0,
            "recovered segments must carry their NDET records"
        );
        let mut src = script();
        Interp::new(&p, &bl, InterpConfig::default())
            .run_with(&inputs, &mut src, &mut cap)
            .unwrap();
        cap.finish().unwrap();

        let report = fsck_dir(&dir).unwrap();
        prop_assert!(report.is_clean() && report.finished, "{report:?}");
        prop_assert!(read_manifest(&dir).unwrap().finished, "manifest must be rewritten");
        let wet = seal(&p, &bl, &dir, 1).unwrap();
        let mut out = Vec::new();
        wet.write_to(&mut out).unwrap();
        prop_assert_eq!(&out, &reference, "tear {:?} broke byte-identity", tear);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The NDET values a resumed capture recovers must be byte-identical to
/// what the crashed run recorded — spot-check against the scripted
/// clock, independent of the property above.
#[test]
fn recovered_ndet_matches_the_script() {
    let p = clocked_program();
    let mut config = WetConfig::default();
    config.capture.segment_interval = 8;
    let bl = BallLarus::new(&p);
    let dir = fresh_dir("ndet-spotcheck");
    let mut cap = Capture::create(&p, &bl, config.clone(), &dir).unwrap();
    let mut src = script();
    Interp::new(&p, &bl, InterpConfig::default()).run_with(&[64], &mut src, &mut cap).unwrap();
    drop(cap);
    std::fs::remove_file(dir.join("MANIFEST")).unwrap();
    let cap = Capture::resume(&p, &bl, &dir).unwrap();
    let mut expect = script();
    for rec in cap.recovered_ndet() {
        assert_eq!(Some(rec.value), expect.read(rec.kind, 0), "at ts {}", rec.ts);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
