//! A set-associative data cache simulator with LRU replacement.

/// Cache geometry. Addresses are 64-bit *word* indices (the IR memory
/// is word-addressed).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Words per cache line (power of two).
    pub line_words: usize,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for CacheConfig {
    /// 32 KiB-equivalent: 8-word (64-byte) lines, 64 sets, 8 ways.
    fn default() -> Self {
        CacheConfig { line_words: 8, sets: 64, ways: 8 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
}

/// The cache simulator.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    cfg: CacheConfig,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics unless `line_words` and `sets` are powers of two and
    /// `ways >= 1`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_words.is_power_of_two(), "line_words must be a power of two");
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways >= 1, "ways must be >= 1");
        Cache {
            lines: vec![Line { tag: 0, lru: 0, valid: false }; cfg.sets * cfg.ways],
            cfg,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses a word address; returns `true` on a hit and fills the
    /// line on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line_addr = addr / self.cfg.line_words as u64;
        let set = (line_addr as usize) & (self.cfg.sets - 1);
        let tag = line_addr >> self.cfg.sets.trailing_zeros();
        let base = set * self.cfg.ways;
        let ways = &mut self.lines[base..base + self.cfg.ways];
        if let Some(l) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        *victim = Line { tag, lru: self.tick, valid: true };
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses (0 if none).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::default());
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(101), "same line");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn capacity_eviction() {
        // Direct-mapped single-set cache with 1-word lines: any two
        // distinct addresses conflict.
        let mut c = Cache::new(CacheConfig { line_words: 1, sets: 1, ways: 1 });
        assert!(!c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(1), "evicted by 2");
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = Cache::new(CacheConfig { line_words: 1, sets: 1, ways: 2 });
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        assert!(!c.access(3), "miss fills over 2");
        assert!(c.access(1), "1 survived");
        assert!(!c.access(2), "2 was evicted");
    }

    #[test]
    fn sequential_scan_has_line_locality() {
        let mut c = Cache::new(CacheConfig::default());
        for a in 0..800u64 {
            c.access(a);
        }
        // One miss per 8-word line.
        assert_eq!(c.misses(), 100);
        assert!((c.miss_ratio() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn repeated_small_working_set_all_hits() {
        let mut c = Cache::new(CacheConfig::default());
        for _ in 0..10 {
            for a in 0..64u64 {
                c.access(a);
            }
        }
        assert_eq!(c.misses(), 8, "only cold misses");
    }
}
