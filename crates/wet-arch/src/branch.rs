//! Branch predictors producing per-instance misprediction bits.

/// A dynamic branch predictor.
pub trait BranchPredictor {
    /// Predicts the branch at `pc`, updates internal state with the
    /// actual outcome, and returns the prediction that was made.
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool;
}

#[inline]
fn counter_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// A bimodal predictor: a table of 2-bit saturating counters indexed by
/// PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<u8>,
    mask: u64,
}

impl Bimodal {
    /// Creates a predictor with `1 << bits` counters, initialized
    /// weakly not-taken.
    pub fn new(bits: u32) -> Self {
        let n = 1usize << bits;
        Bimodal { table: vec![1; n], mask: n as u64 - 1 }
    }
}

impl BranchPredictor for Bimodal {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = (pc & self.mask) as usize;
        let pred = self.table[i] >= 2;
        counter_update(&mut self.table[i], taken);
        pred
    }
}

/// A gshare predictor: global history XOR PC indexes a table of 2-bit
/// counters.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<u8>,
    mask: u64,
    history: u64,
    hist_mask: u64,
}

impl Gshare {
    /// Creates a gshare predictor with `1 << bits` counters and
    /// `hist_bits` bits of global history.
    pub fn new(bits: u32, hist_bits: u32) -> Self {
        let n = 1usize << bits;
        Gshare { table: vec![1; n], mask: n as u64 - 1, history: 0, hist_mask: (1u64 << hist_bits) - 1 }
    }
}

impl BranchPredictor for Gshare {
    fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let i = ((pc ^ self.history) & self.mask) as usize;
        let pred = self.table[i] >= 2;
        counter_update(&mut self.table[i], taken);
        self.history = ((self.history << 1) | u64::from(taken)) & self.hist_mask;
        pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_bias() {
        let mut p = Bimodal::new(8);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.predict_and_update(0x40, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2, "always-taken branch mispredicted {wrong} times");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = Gshare::new(10, 8);
        let mut wrong = 0;
        for i in 0..500 {
            let taken = i % 2 == 0;
            if p.predict_and_update(0x80, taken) != taken {
                wrong += 1;
            }
        }
        assert!(wrong < 40, "history should capture alternation, wrong = {wrong}");
    }

    #[test]
    fn bimodal_cannot_learn_alternation() {
        let mut p = Bimodal::new(10);
        let mut wrong = 0;
        for i in 0..500 {
            let taken = i % 2 == 0;
            if p.predict_and_update(0x80, taken) != taken {
                wrong += 1;
            }
        }
        assert!(wrong > 200, "bimodal has no history; wrong = {wrong}");
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(10);
        for _ in 0..10 {
            p.predict_and_update(1, true);
            p.predict_and_update(2, false);
        }
        assert!(p.predict_and_update(1, true));
        assert!(!p.predict_and_update(2, false));
    }
}
