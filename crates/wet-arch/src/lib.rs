//! # wet-arch — architecture-specific execution histories
//!
//! The paper's Table 4 shows that WETs "can be augmented with
//! significant amounts of architecture specific information with modest
//! increase in WET sizes": one bit per dynamic branch (mispredicted?),
//! load (cache miss?), and store (cache miss?). This crate provides the
//! simulators that generate those bits — branch predictors
//! ([`Bimodal`], [`Gshare`]) and a set-associative LRU data [`Cache`] —
//! plus [`ArchSink`], a [`TraceSink`] that consumes the interpreter's
//! event stream and accumulates the three bit histories.
//!
//! # Example
//!
//! ```
//! use wet_arch::{ArchConfig, ArchSink};
//! use wet_interp::{Interp, InterpConfig};
//! use wet_ir::ballarus::BallLarus;
//! use wet_ir::builder::ProgramBuilder;
//! use wet_ir::stmt::{BinOp, Operand};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A loop storing then loading memory; the sink collects miss bits.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main", 0);
//! let (e, h, body, x) = (f.entry_block(), f.new_block(), f.new_block(), f.new_block());
//! let (i, c, v) = (f.reg(), f.reg(), f.reg());
//! f.block(e).movi(i, 0);
//! f.block(e).jump(h);
//! f.block(h).bin(BinOp::Lt, c, i, 100i64);
//! f.block(h).branch(c, body, x);
//! f.block(body).store(Operand::Reg(i), i);
//! f.block(body).load(v, Operand::Reg(i));
//! f.block(body).bin(BinOp::Add, i, i, 1i64);
//! f.block(body).jump(h);
//! f.block(x).ret(None);
//! let main = f.finish();
//! let program = pb.finish(main)?;
//! let bl = BallLarus::new(&program);
//! let mut arch = ArchSink::new(ArchConfig::default());
//! Interp::new(&program, &bl, InterpConfig::default()).run(&[], &mut arch)?;
//! let h = arch.histories();
//! assert_eq!(h.branch_bits.len(), 101);
//! assert_eq!(h.load_bits.len(), 100);
//! assert_eq!(h.store_bits.len(), 100);
//! # Ok(())
//! # }
//! ```

mod branch;
mod cache;

pub use branch::{Bimodal, BranchPredictor, Gshare};
pub use cache::{Cache, CacheConfig};

use wet_interp::{StmtEvent, TraceSink};

/// Which branch predictor [`ArchSink`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// PC-indexed 2-bit counters.
    Bimodal,
    /// Global-history gshare.
    Gshare,
}

/// Configuration for the architecture sink.
#[derive(Debug, Clone, Copy)]
pub struct ArchConfig {
    /// Branch predictor flavor.
    pub predictor: PredictorKind,
    /// log2 of the predictor table size.
    pub predictor_bits: u32,
    /// Global history length for gshare.
    pub history_bits: u32,
    /// Data cache geometry.
    pub cache: CacheConfig,
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig { predictor: PredictorKind::Gshare, predictor_bits: 14, history_bits: 12, cache: CacheConfig::default() }
    }
}

/// An append-only bit history (1 bit per dynamic event).
#[derive(Debug, Clone, Default)]
pub struct BitHistory {
    words: Vec<u64>,
    len: usize,
    ones: u64,
}

impl BitHistory {
    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
            self.ones += 1;
        }
        self.len += 1;
    }

    /// Number of recorded bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits (mispredictions / misses).
    pub fn ones(&self) -> u64 {
        self.ones
    }

    /// Storage in bytes (1 bit per event, as the paper's Table 4
    /// accounts it).
    pub fn bytes(&self) -> u64 {
        (self.len as u64).div_ceil(8)
    }
}

/// The three architecture-specific bit histories of one run.
#[derive(Debug, Clone, Default)]
pub struct ArchHistories {
    /// Per-branch misprediction bits.
    pub branch_bits: BitHistory,
    /// Per-load cache-miss bits.
    pub load_bits: BitHistory,
    /// Per-store cache-miss bits.
    pub store_bits: BitHistory,
}

impl ArchHistories {
    /// Total storage in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.branch_bits.bytes() + self.load_bits.bytes() + self.store_bits.bytes()
    }
}

/// A [`TraceSink`] that simulates a branch predictor and data cache
/// over the event stream and records Table 4's bit histories.
#[derive(Debug, Clone)]
pub struct ArchSink {
    bimodal: Bimodal,
    gshare: Gshare,
    kind: PredictorKind,
    cache: Cache,
    hist: ArchHistories,
}

impl ArchSink {
    /// Creates a sink with the given configuration.
    pub fn new(cfg: ArchConfig) -> Self {
        ArchSink {
            bimodal: Bimodal::new(cfg.predictor_bits),
            gshare: Gshare::new(cfg.predictor_bits, cfg.history_bits),
            kind: cfg.predictor,
            cache: Cache::new(cfg.cache),
            hist: ArchHistories::default(),
        }
    }

    /// The collected histories.
    pub fn histories(&self) -> &ArchHistories {
        &self.hist
    }

    /// Consumes the sink, returning the histories.
    pub fn into_histories(self) -> ArchHistories {
        self.hist
    }

    /// The cache simulator (for miss-rate statistics).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }
}

impl TraceSink for ArchSink {
    fn on_stmt(&mut self, ev: &StmtEvent) {
        if let Some(taken) = ev.branch_taken {
            let pc = ev.stmt.0 as u64;
            let pred = match self.kind {
                PredictorKind::Bimodal => self.bimodal.predict_and_update(pc, taken),
                PredictorKind::Gshare => self.gshare.predict_and_update(pc, taken),
            };
            self.hist.branch_bits.push(pred != taken);
        }
        if let Some(mem) = ev.mem {
            let hit = self.cache.access(mem.addr);
            if mem.is_store {
                self.hist.store_bits.push(!hit);
            } else {
                self.hist.load_bits.push(!hit);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_history_roundtrip() {
        let mut h = BitHistory::default();
        for i in 0..130 {
            h.push(i % 3 == 0);
        }
        assert_eq!(h.len(), 130);
        assert_eq!(h.ones(), 44);
        assert!(h.get(0));
        assert!(!h.get(1));
        assert!(h.get(129));
        assert_eq!(h.bytes(), 17);
    }

    #[test]
    fn arch_sink_counts_event_kinds() {
        use wet_interp::MemAccess;
        use wet_ir::StmtId;
        let mut sink = ArchSink::new(ArchConfig::default());
        let base = StmtEvent {
            stmt: StmtId(0),
            instance: 0,
            ts: 1,
            value: None,
            op_deps: [None, None],
            mem_dep: None,
            mem: None,
            branch_taken: None,
        };
        let mut b = base;
        b.branch_taken = Some(true);
        sink.on_stmt(&b);
        let mut l = base;
        l.mem = Some(MemAccess { addr: 5, is_store: false });
        sink.on_stmt(&l);
        let mut s = base;
        s.mem = Some(MemAccess { addr: 5, is_store: true });
        sink.on_stmt(&s);
        let h = sink.histories();
        assert_eq!(h.branch_bits.len(), 1);
        assert_eq!(h.load_bits.len(), 1);
        assert_eq!(h.store_bits.len(), 1);
        assert!(h.load_bits.get(0), "cold miss");
        assert!(!h.store_bits.get(0), "store hits the loaded line");
    }
}
