//! `parser-like` — tokenizer plus recursive descent in the spirit of
//! `197.parser`.
//!
//! A synthetic character buffer (letters, digits, spaces, brackets) is
//! tokenized with run-consuming inner loops, and a recursive IR
//! function walks the bracket nesting — the call-heavy, short-path
//! profile typical of parsers, which compressed well in the paper.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const TEXT_LEN: i64 = 4096;
const TEXT: i64 = 0;

// Character classes stored directly in the buffer.
const CH_LETTER: i64 = 0;
const CH_DIGIT: i64 = 1;
const CH_SPACE: i64 = 2;
const CH_OPEN: i64 = 3;
const CH_CLOSE: i64 = 4;

/// Builds the program. Inputs: `[passes, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();

    // Recursive bracket walker: `descend(pos)` consumes a balanced
    // group starting at an open bracket and returns the position after
    // it. Recursion depth follows the generated nesting.
    let descend = pb.declare("descend");
    {
        let mut g = pb.define(descend, 1);
        let e = g.entry_block();
        let pos = g.param(0);
        let (ch, cc, p) = (g.reg(), g.reg(), g.reg());
        let (loop_h, body, fin) = (g.new_block(), g.new_block(), g.new_block());
        // p = pos + 1 (skip the open bracket)
        g.block(e).bin(BinOp::Add, p, pos, 1i64);
        g.block(e).jump(loop_h);
        // while p < TEXT_LEN
        let (chk, out_of_range) = (g.new_block(), g.new_block());
        g.block(loop_h).bin(BinOp::Lt, cc, p, TEXT_LEN);
        g.block(loop_h).branch(cc, chk, out_of_range);
        g.block(chk).bin(BinOp::Add, ch, p, TEXT);
        g.block(chk).load(ch, ch);
        g.block(chk).jump(body);
        // if ch == CLOSE: return p + 1
        let (not_close, is_open, next) = (g.new_block(), g.new_block(), g.new_block());
        g.block(body).bin(BinOp::Eq, cc, ch, CH_CLOSE);
        g.block(body).branch(cc, fin, not_close);
        // if ch == OPEN: p = descend(p) else p += 1
        g.block(not_close).bin(BinOp::Eq, cc, ch, CH_OPEN);
        g.block(not_close).branch(cc, is_open, next);
        g.block(is_open).call(descend, vec![Operand::Reg(p)], Some(p), loop_h);
        g.block(next).bin(BinOp::Add, p, p, 1i64);
        g.block(next).jump(loop_h);
        g.block(fin).bin(BinOp::Add, p, p, 1i64);
        g.block(fin).ret(Some(Operand::Reg(p)));
        g.block(out_of_range).ret(Some(Operand::Reg(p)));
        g.finish();
    }

    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (passes, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(passes);
    f.block(e).input(x);

    // Generate text: mostly letters/digits/spaces; brackets open with
    // bounded nesting (a matching close is planted 5 cells later when
    // possible, keeping groups balanced enough for bounded recursion).
    let (t, u, addr) = (f.reg(), f.reg(), f.reg());
    f.block(e).movi(i, 0);
    f.block(e).movi(n, TEXT_LEN);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    {
        let mut b = f.block(ib);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, t, x, 16i64);
        // 0..7 -> letter, 8..11 -> digit, 12..13 -> space,
        // 14 -> open, 15 -> close
        b.bin(BinOp::Lt, u, t, 8i64);
    }
    let (letter, not_letter, digit, not_digit, space, bracket, op, cl, stored) = (
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
    );
    let cls = f.reg();
    f.block(ib).branch(u, letter, not_letter);
    f.block(letter).movi(cls, CH_LETTER);
    f.block(letter).jump(stored);
    f.block(not_letter).bin(BinOp::Lt, u, t, 12i64);
    f.block(not_letter).branch(u, digit, not_digit);
    f.block(digit).movi(cls, CH_DIGIT);
    f.block(digit).jump(stored);
    f.block(not_digit).bin(BinOp::Lt, u, t, 14i64);
    f.block(not_digit).branch(u, space, bracket);
    f.block(space).movi(cls, CH_SPACE);
    f.block(space).jump(stored);
    f.block(bracket).bin(BinOp::Eq, u, t, 14i64);
    f.block(bracket).branch(u, op, cl);
    f.block(op).movi(cls, CH_OPEN);
    f.block(op).jump(stored);
    f.block(cl).movi(cls, CH_CLOSE);
    f.block(cl).jump(stored);
    {
        let mut b = f.block(stored);
        b.bin(BinOp::Add, addr, i, TEXT);
        b.store(addr, cls);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Pass loop: tokenize, and descend into each top-level bracket.
    let (pass, words, numbers, groups, pos, ch, cc) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(ix).movi(pass, 0);
    f.block(ix).movi(words, 0);
    f.block(ix).movi(numbers, 0);
    f.block(ix).movi(groups, 0);
    let (ph, pb2, px) = loop_blocks(&mut f, pass, passes, c);
    f.block(ix).jump(ph);

    // Drift the text: rewrite 64 pseudo-random cells each pass so the
    // token stream differs from pass to pass.
    let (drift_i, dh, db, dx) = {
        let di = f.reg();
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.block(head).bin(BinOp::Lt, cc, di, 64i64);
        f.block(head).branch(cc, body, exit);
        (di, head, body, exit)
    };
    f.block(pb2).movi(drift_i, 0);
    f.block(pb2).jump(dh);
    {
        let mut b = f.block(db);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, addr, x, TEXT_LEN);
        b.bin(BinOp::Add, addr, addr, TEXT);
        b.bin(BinOp::Shr, t, x, 9i64);
        b.bin(BinOp::Rem, t, t, 3i64);
        b.store(addr, t);
        b.bin(BinOp::Add, drift_i, drift_i, 1i64);
        b.jump(dh);
    }
    let scan = f.new_block();
    f.block(dx).movi(pos, 0);
    f.block(dx).jump(scan);
    let (scan_body, scan_done) = (f.new_block(), f.new_block());
    f.block(scan).bin(BinOp::Lt, cc, pos, TEXT_LEN);
    f.block(scan).branch(cc, scan_body, scan_done);
    f.block(scan_body).bin(BinOp::Add, addr, pos, TEXT);
    f.block(scan_body).load(ch, addr);

    // Dispatch on class; letters and digits consume runs.
    let (is_letter, not_l, is_digit, not_d, is_open, skip) =
        (f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.block(scan_body).bin(BinOp::Eq, cc, ch, CH_LETTER);
    f.block(scan_body).branch(cc, is_letter, not_l);
    // Word: consume letter run.
    let (wl, wl_chk, wl_done) = (f.new_block(), f.new_block(), f.new_block());
    f.block(is_letter).bin(BinOp::Add, words, words, 1i64);
    f.block(is_letter).jump(wl);
    f.block(wl).bin(BinOp::Lt, cc, pos, TEXT_LEN);
    f.block(wl).branch(cc, wl_chk, wl_done);
    {
        let mut b = f.block(wl_chk);
        b.bin(BinOp::Add, addr, pos, TEXT);
        b.load(ch, addr);
        b.bin(BinOp::Eq, cc, ch, CH_LETTER);
        b.branch(cc, skip, wl_done);
    }
    f.block(skip).bin(BinOp::Add, pos, pos, 1i64);
    f.block(skip).jump(wl);
    f.block(wl_done).jump(scan);
    // Number: consume digit run (shares the word machinery shape).
    let (dl, dl_chk, dl_skip, dl_done) = (f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.block(not_l).bin(BinOp::Eq, cc, ch, CH_DIGIT);
    f.block(not_l).branch(cc, is_digit, not_d);
    f.block(is_digit).bin(BinOp::Add, numbers, numbers, 1i64);
    f.block(is_digit).jump(dl);
    f.block(dl).bin(BinOp::Lt, cc, pos, TEXT_LEN);
    f.block(dl).branch(cc, dl_chk, dl_done);
    {
        let mut b = f.block(dl_chk);
        b.bin(BinOp::Add, addr, pos, TEXT);
        b.load(ch, addr);
        b.bin(BinOp::Eq, cc, ch, CH_DIGIT);
        b.branch(cc, dl_skip, dl_done);
    }
    f.block(dl_skip).bin(BinOp::Add, pos, pos, 1i64);
    f.block(dl_skip).jump(dl);
    f.block(dl_done).jump(scan);
    // Open bracket: recursive descent.
    let after_descend = f.new_block();
    let advance_one = skip2(&mut f, pos, scan);
    f.block(not_d).bin(BinOp::Eq, cc, ch, CH_OPEN);
    f.block(not_d).branch(cc, is_open, advance_one);
    f.block(is_open).bin(BinOp::Add, groups, groups, 1i64);
    f.block(is_open).call(descend, vec![Operand::Reg(pos)], Some(pos), after_descend);
    f.block(after_descend).jump(scan);

    {
        let mut b = f.block(scan_done);
        b.bin(BinOp::Add, pass, pass, 1i64);
        b.jump(ph);
    }

    f.block(px).out(Operand::Reg(words));
    f.block(px).out(Operand::Reg(numbers));
    f.block(px).out(Operand::Reg(groups));
    f.block(px).ret(Some(Operand::Reg(words)));
    let main = f.finish();
    pb.finish(main).expect("parser-like program is valid")
}

/// Emits a tiny "advance one char" block and returns it.
fn skip2(f: &mut wet_ir::builder::FunctionBuilder<'_>, pos: wet_ir::Reg, scan: wet_ir::BlockId) -> wet_ir::BlockId {
    let b = f.new_block();
    f.block(b).bin(BinOp::Add, pos, pos, 1i64);
    f.block(b).jump(scan);
    b
}

/// Statements per pass (tokenize whole buffer), measured.
pub const STMTS_PER_ITER: u64 = 42_000;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let passes = (target_stmts / STMTS_PER_ITER).max(1);
    vec![passes as i64, 197_197]
}
