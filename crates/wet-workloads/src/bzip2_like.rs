//! `bzip2-like` — move-to-front + run-length coding in the spirit of
//! `256.bzip2`.
//!
//! Each pass MTF-transforms a byte buffer against an in-memory
//! alphabet table (linear search + shift loops, both with
//! data-dependent trip counts) and run-length-counts the output.
//! Because skewed data keeps MTF indexes tiny and repetitive,
//! `256.bzip2` showed the paper's best tier-2 timestamp ratio
//! (1171.6 in Table 2); this workload reproduces that extreme
//! repetitiveness.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const ALPHA: i64 = 32; // alphabet size
const BUF_LEN: i64 = 4096;
const BUF: i64 = 0;
const TABLE: i64 = BUF_LEN; // MTF table

/// Builds the program. Inputs: `[passes, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (passes, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(passes);
    f.block(e).input(x);

    // Skewed buffer: long runs (run length 1..16) over a tiny alphabet.
    let (t, u, addr, run, sym) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).movi(i, 0);
    f.block(e).movi(run, 0);
    f.block(e).movi(sym, 0);
    f.block(e).movi(n, BUF_LEN);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    let (new_run, write) = (f.new_block(), f.new_block());
    f.block(ib).bin(BinOp::Le, u, run, 0i64);
    f.block(ib).branch(u, new_run, write);
    {
        let mut b = f.block(new_run);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, run, x, 16i64);
        b.bin(BinOp::Add, run, run, 1i64);
        b.bin(BinOp::Shr, sym, x, 7i64);
        b.bin(BinOp::Rem, sym, sym, ALPHA);
        b.jump(write);
    }
    {
        let mut b = f.block(write);
        b.bin(BinOp::Add, addr, i, BUF);
        b.store(addr, sym);
        b.bin(BinOp::Sub, run, run, 1i64);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Pass loop.
    let (pass, runs, zero_out, cc, prev) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(ix).movi(pass, 0);
    f.block(ix).movi(runs, 0);
    f.block(ix).movi(zero_out, 0);
    let (ph, pb2, px) = loop_blocks(&mut f, pass, passes, c);
    f.block(ix).jump(ph);

    // Reset the MTF table: table[j] = j.
    let j = f.reg();
    let (th, tb, tx) = {
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.block(head).bin(BinOp::Lt, cc, j, ALPHA);
        f.block(head).branch(cc, body, exit);
        (head, body, exit)
    };
    f.block(pb2).movi(j, 0);
    f.block(pb2).jump(th);
    {
        let mut b = f.block(tb);
        b.bin(BinOp::Add, addr, j, TABLE);
        b.store(addr, j);
        b.bin(BinOp::Add, j, j, 1i64);
        b.jump(th);
    }

    // MTF scan of the buffer.
    let pos = f.reg();
    f.block(tx).movi(pos, 0);
    f.block(tx).movi(prev, -1i64);
    let (sh, sb, sx) = {
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.block(head).bin(BinOp::Lt, cc, pos, BUF_LEN);
        f.block(head).branch(cc, body, exit);
        (head, body, exit)
    };
    f.block(tx).jump(sh);
    {
        let mut b = f.block(sb);
        b.bin(BinOp::Add, addr, pos, BUF);
        b.load(sym, addr);
        b.movi(j, 0);
    }
    // Find j with table[j] == sym (guaranteed to exist).
    let (fh, fb, fdone) = (f.new_block(), f.new_block(), f.new_block());
    f.block(sb).jump(fh);
    {
        let mut b = f.block(fh);
        b.bin(BinOp::Add, addr, j, TABLE);
        b.load(t, addr);
        b.bin(BinOp::Eq, cc, t, sym);
        b.branch(cc, fdone, fb);
    }
    f.block(fb).bin(BinOp::Add, j, j, 1i64);
    f.block(fb).jump(fh);
    // Shift table[0..j] up by one, table[0] = sym; count output runs.
    let (shift_h, shift_b, shift_done) = (f.new_block(), f.new_block(), f.new_block());
    let k = f.reg();
    f.block(fdone).mov(k, Operand::Reg(j));
    f.block(fdone).jump(shift_h);
    f.block(shift_h).bin(BinOp::Gt, cc, k, 0i64);
    f.block(shift_h).branch(cc, shift_b, shift_done);
    {
        let mut b = f.block(shift_b);
        b.bin(BinOp::Sub, t, k, 1i64);
        b.bin(BinOp::Add, addr, t, TABLE);
        b.load(u, addr);
        b.bin(BinOp::Add, addr, k, TABLE);
        b.store(addr, u);
        b.bin(BinOp::Sub, k, k, 1i64);
        b.jump(shift_h);
    }
    {
        let mut b = f.block(shift_done);
        b.store(TABLE, sym);
        // RLE over MTF output: count runs of equal indexes and zeros.
        b.bin(BinOp::Ne, cc, j, prev);
        b.bin(BinOp::Add, runs, runs, cc);
        b.mov(prev, Operand::Reg(j));
        b.bin(BinOp::Eq, cc, j, 0i64);
        b.bin(BinOp::Add, zero_out, zero_out, cc);
        b.bin(BinOp::Add, pos, pos, 1i64);
        b.jump(sh);
    }

    {
        let mut b = f.block(sx);
        b.bin(BinOp::Add, pass, pass, 1i64);
        b.jump(ph);
    }

    f.block(px).out(Operand::Reg(runs));
    f.block(px).out(Operand::Reg(zero_out));
    f.block(px).ret(Some(Operand::Reg(runs)));
    let main = f.finish();
    pb.finish(main).expect("bzip2-like program is valid")
}

/// Statements per pass (whole-buffer MTF), measured.
pub const STMTS_PER_ITER: u64 = 120_000;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let passes = (target_stmts / STMTS_PER_ITER).max(1);
    vec![passes as i64, 256_256]
}
