//! # wet-workloads — synthetic SPEC-like benchmark programs
//!
//! The paper evaluates WETs on nine SpecInt 95/2000 benchmarks run
//! under Trimaran. SPEC sources and inputs cannot be redistributed, so
//! this crate provides nine synthetic programs written in the `wet-ir`
//! intermediate language, one per paper row, each engineered to
//! reproduce its counterpart's *dominant dynamic behaviour* — the
//! property that determines WET stream compressibility:
//!
//! | Workload | Mimics | Behaviour |
//! |---|---|---|
//! | [`go_like`] | `099.go` | branchy board evaluation, complex control flow |
//! | [`gcc_like`] | `126.gcc` | table-driven state machine, dispatch-heavy |
//! | [`li_like`] | `130.li` | bytecode interpreter loop plus recursion |
//! | [`gzip_like`] | `164.gzip` | LZ77 hashing and match extension |
//! | [`mcf_like`] | `181.mcf` | pointer chasing, poor locality |
//! | [`parser_like`] | `197.parser` | tokenizer runs plus recursive descent |
//! | [`vortex_like`] | `255.vortex` | hash-table object store transactions |
//! | [`bzip2_like`] | `256.bzip2` | move-to-front + RLE transform |
//! | [`twolf_like`] | `300.twolf` | annealing swaps with random accepts |
//!
//! Each module exposes `program()` and `inputs_for(target_stmts)`; the
//! [`Workload`] catalog wraps both for the bench harness.

pub mod bzip2_like;
pub mod gcc_like;
pub mod go_like;
pub mod gzip_like;
pub mod li_like;
pub mod mcf_like;
pub mod ndet;
pub mod parser_like;
pub mod twolf_like;
pub mod util;
pub mod vortex_like;

use wet_ir::Program;

/// The nine workload kinds, in the paper's Table 1 row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Kind {
    /// `099.go`-like.
    Go,
    /// `126.gcc`-like.
    Gcc,
    /// `130.li`-like.
    Li,
    /// `164.gzip`-like.
    Gzip,
    /// `181.mcf`-like.
    Mcf,
    /// `197.parser`-like.
    Parser,
    /// `255.vortex`-like.
    Vortex,
    /// `256.bzip2`-like.
    Bzip2,
    /// `300.twolf`-like.
    Twolf,
}

impl Kind {
    /// All kinds in Table 1 row order.
    pub fn all() -> [Kind; 9] {
        [
            Kind::Go,
            Kind::Gcc,
            Kind::Li,
            Kind::Gzip,
            Kind::Mcf,
            Kind::Parser,
            Kind::Vortex,
            Kind::Bzip2,
            Kind::Twolf,
        ]
    }

    /// The display name used in bench tables (echoing the paper rows).
    pub fn name(self) -> &'static str {
        match self {
            Kind::Go => "go-like",
            Kind::Gcc => "gcc-like",
            Kind::Li => "li-like",
            Kind::Gzip => "gzip-like",
            Kind::Mcf => "mcf-like",
            Kind::Parser => "parser-like",
            Kind::Vortex => "vortex-like",
            Kind::Bzip2 => "bzip2-like",
            Kind::Twolf => "twolf-like",
        }
    }

    /// Builds the program for this kind.
    pub fn program(self) -> Program {
        match self {
            Kind::Go => go_like::program(),
            Kind::Gcc => gcc_like::program(),
            Kind::Li => li_like::program(),
            Kind::Gzip => gzip_like::program(),
            Kind::Mcf => mcf_like::program(),
            Kind::Parser => parser_like::program(),
            Kind::Vortex => vortex_like::program(),
            Kind::Bzip2 => bzip2_like::program(),
            Kind::Twolf => twolf_like::program(),
        }
    }

    /// Inputs targeting roughly `target_stmts` executed statements.
    pub fn inputs_for(self, target_stmts: u64) -> Vec<i64> {
        match self {
            Kind::Go => go_like::inputs_for(target_stmts),
            Kind::Gcc => gcc_like::inputs_for(target_stmts),
            Kind::Li => li_like::inputs_for(target_stmts),
            Kind::Gzip => gzip_like::inputs_for(target_stmts),
            Kind::Mcf => mcf_like::inputs_for(target_stmts),
            Kind::Parser => parser_like::inputs_for(target_stmts),
            Kind::Vortex => vortex_like::inputs_for(target_stmts),
            Kind::Bzip2 => bzip2_like::inputs_for(target_stmts),
            Kind::Twolf => twolf_like::inputs_for(target_stmts),
        }
    }
}

/// A ready-to-run workload: program plus inputs.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this mimics.
    pub kind: Kind,
    /// The program.
    pub program: Program,
    /// Inputs sized for the requested statement target.
    pub inputs: Vec<i64>,
}

/// Builds one workload targeting roughly `target_stmts` executed
/// statements.
pub fn build(kind: Kind, target_stmts: u64) -> Workload {
    Workload { kind, program: kind.program(), inputs: kind.inputs_for(target_stmts) }
}

/// Builds all nine workloads at the same statement target.
pub fn all(target_stmts: u64) -> Vec<Workload> {
    Kind::all().into_iter().map(|k| build(k, target_stmts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wet_interp::{Interp, InterpConfig, NullSink, RunResult};
    use wet_ir::ballarus::BallLarus;

    fn run(kind: Kind, target: u64) -> RunResult {
        let w = build(kind, target);
        let bl = BallLarus::new(&w.program);
        Interp::new(&w.program, &bl, InterpConfig::default())
            .run(&w.inputs, &mut NullSink)
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()))
    }

    #[test]
    fn all_workloads_run_and_terminate() {
        for kind in Kind::all() {
            let r = run(kind, 50_000);
            assert!(r.stmts_executed > 0, "{}", kind.name());
            assert!(!r.outputs.is_empty(), "{} must produce output", kind.name());
        }
    }

    #[test]
    fn deterministic_outputs() {
        for kind in Kind::all() {
            let a = run(kind, 30_000);
            let b = run(kind, 30_000);
            assert_eq!(a.outputs, b.outputs, "{} must be deterministic", kind.name());
        }
    }

    #[test]
    fn statement_targets_are_roughly_met() {
        for kind in Kind::all() {
            let target = 300_000;
            let r = run(kind, target);
            let ratio = r.stmts_executed as f64 / target as f64;
            assert!(
                (0.3..3.5).contains(&ratio),
                "{}: executed {} for target {target} (ratio {ratio:.2})",
                kind.name(),
                r.stmts_executed
            );
        }
    }

    #[test]
    fn scaling_increases_work() {
        for kind in Kind::all() {
            let small = run(kind, 30_000);
            let large = run(kind, 300_000);
            assert!(
                large.stmts_executed > small.stmts_executed,
                "{}: {} !> {}",
                kind.name(),
                large.stmts_executed,
                small.stmts_executed
            );
        }
    }

    #[test]
    fn workloads_exercise_memory_and_branches() {
        use wet_interp::{StmtEvent, TraceSink};
        #[derive(Default)]
        struct Counter {
            loads: u64,
            stores: u64,
            branches: u64,
        }
        impl TraceSink for Counter {
            fn on_stmt(&mut self, ev: &StmtEvent) {
                if let Some(m) = ev.mem {
                    if m.is_store {
                        self.stores += 1;
                    } else {
                        self.loads += 1;
                    }
                }
                if ev.branch_taken.is_some() {
                    self.branches += 1;
                }
            }
        }
        for kind in Kind::all() {
            let w = build(kind, 50_000);
            let bl = BallLarus::new(&w.program);
            let mut c = Counter::default();
            Interp::new(&w.program, &bl, InterpConfig::default()).run(&w.inputs, &mut c).unwrap();
            assert!(c.loads > 0, "{} has no loads", kind.name());
            assert!(c.stores > 0, "{} has no stores", kind.name());
            assert!(c.branches > 100, "{} has too few branches", kind.name());
        }
    }

    /// Prints the measured statements-per-iteration so the calibration
    /// constants can be updated (run with --nocapture).
    #[test]
    fn calibration_report() {
        for kind in Kind::all() {
            let target = 200_000u64;
            let r = run(kind, target);
            println!("{:12} target {} executed {}", kind.name(), target, r.stmts_executed);
        }
    }
}
