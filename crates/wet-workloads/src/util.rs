//! Shared IR-construction idioms for the synthetic workloads.

use wet_ir::builder::{BlockCursor, FunctionBuilder};
use wet_ir::stmt::BinOp;
use wet_ir::{BlockId, Reg};

/// Emits `x = (x * 1103515245 + 12345) & 0x7fffffff` — the classic LCG
/// step, the workloads' deterministic randomness source.
pub fn lcg_step(b: &mut BlockCursor<'_>, x: Reg) {
    b.bin(BinOp::Mul, x, x, 1103515245i64);
    b.bin(BinOp::Add, x, x, 12345i64);
    b.bin(BinOp::And, x, x, 0x7fffffffi64);
}

/// The canonical counted-loop skeleton:
///
/// ```text
/// head: c = i < n; branch c ? body : exit
/// ...   caller fills body ...
/// body_end -> jump head (caller emits the back edge after
///             incrementing i)
/// ```
///
/// Returns `(head, body, exit)` block ids; the caller must terminate
/// `body` (typically jumping back to `head` after `i += 1`).
pub fn loop_blocks(f: &mut FunctionBuilder<'_>, i: Reg, n: Reg, c: Reg) -> (BlockId, BlockId, BlockId) {
    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.block(head).bin(BinOp::Lt, c, i, n);
    f.block(head).branch(c, body, exit);
    (head, body, exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wet_ir::builder::ProgramBuilder;
    use wet_ir::stmt::Operand;

    #[test]
    fn lcg_loop_runs() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        let e = f.entry_block();
        let (x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg());
        f.block(e).movi(x, 42);
        f.block(e).movi(i, 0);
        f.block(e).movi(n, 10);
        let (head, body, exit) = loop_blocks(&mut f, i, n, c);
        f.block(e).jump(head);
        {
            let mut b = f.block(body);
            lcg_step(&mut b, x);
            b.bin(BinOp::Add, i, i, 1i64);
            b.jump(head);
        }
        f.block(exit).out(Operand::Reg(x));
        f.block(exit).ret(None);
        let main = f.finish();
        let p = pb.finish(main).unwrap();

        let bl = wet_ir::ballarus::BallLarus::new(&p);
        let r = wet_interp::Interp::new(&p, &bl, wet_interp::InterpConfig::default())
            .run(&[], &mut wet_interp::NullSink)
            .unwrap();
        // 10 LCG steps from 42, all within 31 bits.
        let mut x = 42i64;
        for _ in 0..10 {
            x = (x.wrapping_mul(1103515245).wrapping_add(12345)) & 0x7fffffff;
        }
        assert_eq!(r.outputs, vec![x]);
    }
}
