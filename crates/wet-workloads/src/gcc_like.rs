//! `gcc-like` — table-driven state machine in the spirit of `126.gcc`.
//!
//! A synthetic token stream drives a state-transition table held in
//! memory, plus a branch tree dispatching on token class with
//! per-class actions (counter updates, stack pushes/pops, emission).
//! The mix of table loads and irregular branching mimics a compiler
//! front end's dispatch-heavy behaviour; `126.gcc` showed the paper's
//! second-best compression ratio thanks to highly repetitive dispatch
//! paths.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const N_STATES: i64 = 12;
const N_TOKS: i64 = 16;
const TABLE: i64 = 0; // [0, 192): transition table
const STACK: i64 = 256; // [256, 1280): operand stack
const COUNTS: i64 = 1536; // [1536, 1552): per-class counters

/// Builds the program. Inputs: `[tokens, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (tokens, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(tokens);
    f.block(e).input(x);

    // Build the transition table: next = (state * 5 + tok * 3 + 1) % N_STATES.
    let (t, addr) = (f.reg(), f.reg());
    f.block(e).movi(i, 0);
    f.block(e).movi(n, N_STATES * N_TOKS);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    {
        let mut b = f.block(ib);
        b.bin(BinOp::Mul, t, i, 5i64);
        b.bin(BinOp::Add, t, t, 1i64);
        b.bin(BinOp::Rem, t, t, N_STATES);
        b.bin(BinOp::Add, addr, i, TABLE);
        b.store(addr, t);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Token loop.
    let (it, state, sp, emitted, tok, cls, cc) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(ix).movi(it, 0);
    f.block(ix).movi(state, 0);
    f.block(ix).mov(sp, Operand::Imm(STACK));
    f.block(ix).movi(emitted, 0);
    let (mh, mb, mx) = loop_blocks(&mut f, it, tokens, c);
    f.block(ix).jump(mh);

    {
        let mut b = f.block(mb);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, tok, x, N_TOKS);
        // state = table[state * N_TOKS + tok]
        b.bin(BinOp::Mul, t, state, N_TOKS);
        b.bin(BinOp::Add, t, t, tok);
        b.bin(BinOp::Add, addr, t, TABLE);
        b.load(state, addr);
        b.bin(BinOp::Div, cls, tok, 4i64); // 4 token classes
    }
    // Class dispatch tree.
    let (c01, c23, cl0, cl1, cl2, cl3, join) =
        (f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.block(mb).bin(BinOp::Lt, cc, cls, 2i64);
    f.block(mb).branch(cc, c01, c23);
    f.block(c01).bin(BinOp::Eq, cc, cls, 0i64);
    f.block(c01).branch(cc, cl0, cl1);
    f.block(c23).bin(BinOp::Eq, cc, cls, 2i64);
    f.block(c23).branch(cc, cl2, cl3);

    // Class 0: bump a per-token counter.
    {
        let mut b = f.block(cl0);
        b.bin(BinOp::Add, addr, tok, COUNTS);
        b.load(t, addr);
        b.bin(BinOp::Add, t, t, 1i64);
        b.store(addr, t);
        b.jump(join);
    }
    // Class 1: push state onto the stack (bounded).
    let (push, full) = (f.new_block(), f.new_block());
    f.block(cl1).bin(BinOp::Lt, cc, sp, STACK + 1024);
    f.block(cl1).branch(cc, push, full);
    {
        let mut b = f.block(push);
        b.store(sp, state);
        b.bin(BinOp::Add, sp, sp, 1i64);
        b.jump(join);
    }
    f.block(full).mov(sp, Operand::Imm(STACK));
    f.block(full).jump(join);
    // Class 2: pop and mix into state.
    let (pop, empty) = (f.new_block(), f.new_block());
    f.block(cl2).bin(BinOp::Gt, cc, sp, STACK);
    f.block(cl2).branch(cc, pop, empty);
    {
        let mut b = f.block(pop);
        b.bin(BinOp::Sub, sp, sp, 1i64);
        b.load(t, sp);
        b.bin(BinOp::Xor, state, state, t);
        b.bin(BinOp::Rem, state, state, N_STATES);
        b.jump(join);
    }
    f.block(empty).jump(join);
    // Class 3: emit.
    f.block(cl3).bin(BinOp::Add, emitted, emitted, 1i64);
    f.block(cl3).jump(join);

    {
        let mut b = f.block(join);
        b.bin(BinOp::Add, it, it, 1i64);
        b.jump(mh);
    }

    f.block(mx).out(Operand::Reg(emitted));
    f.block(mx).out(Operand::Reg(state));
    f.block(mx).ret(Some(Operand::Reg(emitted)));
    let main = f.finish();
    pb.finish(main).expect("gcc-like program is valid")
}

/// Statements per token iteration, measured.
pub const STMTS_PER_ITER: u64 = 19;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let tokens = (target_stmts / STMTS_PER_ITER).max(1);
    vec![tokens as i64, 126_126]
}
