//! `go-like` — branchy board evaluation in the spirit of `099.go`.
//!
//! A 19x19 board of three-valued cells is initialized pseudo-randomly;
//! each "move" picks a random position, inspects its four neighbours
//! through boundary-checked conditional chains, and conditionally
//! rewrites the cell. The paper notes `099.go`'s "complex control flow
//! structure" made it the hardest benchmark for WET traversal — this
//! workload reproduces that shape: many short paths, data-dependent
//! branching, low value locality.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const N: i64 = 19;
const BOARD: i64 = 0; // board occupies [0, 361)

/// Builds the program. Inputs: `[moves, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (moves, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(moves);
    f.block(e).input(x);
    f.block(e).movi(i, 0);
    f.block(e).movi(n, N * N);

    // Board init: board[p] = lcg % 3.
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    let (t, addr) = (f.reg(), f.reg());
    {
        let mut b = f.block(ib);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, t, x, 3i64);
        b.bin(BinOp::Add, addr, i, BOARD);
        b.store(addr, t);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Move loop.
    let (it, score) = (f.reg(), f.reg());
    f.block(ix).movi(it, 0);
    f.block(ix).movi(score, 0);
    let (mh, mb, mx) = loop_blocks(&mut f, it, moves, c);
    f.block(ix).jump(mh);

    let (p, cell, row, col, neigh, w, cc) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    {
        let mut b = f.block(mb);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, p, x, N * N);
        b.bin(BinOp::Add, addr, p, BOARD);
        b.load(cell, addr);
        b.bin(BinOp::Div, row, p, N);
        b.bin(BinOp::Rem, col, p, N);
        b.movi(neigh, 0);
    }
    // West neighbour: if col > 0 && board[p-1] == cell { neigh += 1 }.
    let check = |f: &mut wet_ir::builder::FunctionBuilder<'_>, cur: wet_ir::BlockId, coord: wet_ir::Reg, cmp: BinOp, lim: i64, delta: i64| {
        let (go, inc, done) = (f.new_block(), f.new_block(), f.new_block());
        f.block(cur).bin(cmp, cc, coord, lim);
        f.block(cur).branch(cc, go, done);
        {
            let mut b = f.block(go);
            b.bin(BinOp::Add, addr, p, BOARD + delta);
            b.load(w, addr);
            b.bin(BinOp::Eq, cc, w, cell);
            b.branch(cc, inc, done);
        }
        f.block(inc).bin(BinOp::Add, neigh, neigh, 1i64);
        f.block(inc).jump(done);
        done
    };
    let d1 = check(&mut f, mb, col, BinOp::Gt, 0, -1);
    let d2 = check(&mut f, d1, col, BinOp::Lt, N - 1, 1);
    let d3 = check(&mut f, d2, row, BinOp::Gt, 0, -N);
    let d4 = check(&mut f, d3, row, BinOp::Lt, N - 1, N);

    // Capture rule: if neigh >= 2 and cell != 0, clear and score;
    // else if cell == 0, place a pseudo-random stone.
    let (cap1, cap2, place_q, place, cont) = (f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.block(d4).bin(BinOp::Ge, cc, neigh, 2i64);
    f.block(d4).branch(cc, cap1, place_q);
    f.block(cap1).bin(BinOp::Ne, cc, cell, 0i64);
    f.block(cap1).branch(cc, cap2, place_q);
    {
        let mut b = f.block(cap2);
        b.bin(BinOp::Add, addr, p, BOARD);
        b.store(addr, 0i64);
        b.bin(BinOp::Add, score, score, neigh);
        b.jump(cont);
    }
    f.block(place_q).bin(BinOp::Eq, cc, cell, 0i64);
    f.block(place_q).branch(cc, place, cont);
    {
        let mut b = f.block(place);
        b.bin(BinOp::Shr, t, x, 8i64);
        b.bin(BinOp::Rem, t, t, 3i64);
        b.bin(BinOp::Add, addr, p, BOARD);
        b.store(addr, t);
        b.jump(cont);
    }
    {
        let mut b = f.block(cont);
        b.bin(BinOp::Add, score, score, cell);
        b.bin(BinOp::Add, it, it, 1i64);
        b.jump(mh);
    }

    f.block(mx).out(Operand::Reg(score));
    f.block(mx).ret(Some(Operand::Reg(score)));
    let main = f.finish();
    pb.finish(main).expect("go-like program is valid")
}

/// Statements per move iteration, measured (see crate tests).
pub const STMTS_PER_ITER: u64 = 33;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let moves = (target_stmts / STMTS_PER_ITER).max(1);
    vec![moves as i64, 20_040_615]
}
