//! `vortex-like` — an in-memory object store in the spirit of
//! `255.vortex`.
//!
//! An open-addressing hash table of `(key, value)` records serves a
//! mixed insert/lookup transaction stream. Probe loops have
//! data-dependent trip counts; the table region dominates memory
//! traffic. `255.vortex` had the paper's best compression ratio
//! (83.63) — database-style record handling is extremely repetitive.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const SLOTS: i64 = 8192; // power of two
const KEYS: i64 = 0;
const VALS: i64 = SLOTS;

/// Builds the program. Inputs: `[transactions, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (txns, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(txns);
    f.block(e).input(x);

    // Clear the key table (0 = empty; keys are made nonzero below).
    let addr = f.reg();
    f.block(e).movi(i, 0);
    f.block(e).movi(n, SLOTS);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    {
        let mut b = f.block(ib);
        b.bin(BinOp::Add, addr, i, KEYS);
        b.store(addr, 0i64);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Transaction loop.
    let (it, key, h, probe, found, hits, inserts, t, cc) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(ix).movi(it, 0);
    f.block(ix).movi(hits, 0);
    f.block(ix).movi(inserts, 0);
    let (mh, mb, mx) = loop_blocks(&mut f, it, txns, c);
    f.block(ix).jump(mh);

    // Key selection: fifteen of sixteen transactions walk keys
    // sequentially (object stores see strong temporal locality, which
    // is why 255.vortex compressed best in the paper); every sixteenth
    // key is random.
    let (seq_key, rand_key, have_key) = (f.new_block(), f.new_block(), f.new_block());
    {
        let mut b = f.block(mb);
        b.bin(BinOp::And, cc, it, 15i64);
        b.bin(BinOp::Eq, cc, cc, 15i64);
        b.branch(cc, rand_key, seq_key);
    }
    {
        let mut b = f.block(seq_key);
        b.bin(BinOp::Rem, key, it, 509i64);
        b.bin(BinOp::Add, key, key, 1i64);
        b.jump(have_key);
    }
    {
        let mut b = f.block(rand_key);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, key, x, 4095i64);
        b.bin(BinOp::Add, key, key, 1i64);
        b.jump(have_key);
    }
    {
        let mut b = f.block(have_key);
        b.bin(BinOp::Mul, h, key, 2654435761i64);
        b.bin(BinOp::And, h, h, SLOTS - 1);
        b.movi(probe, 0);
    }
    // Probe loop: scan until key found or empty slot (bounded probes).
    let (probe_h, probe_chk, probe_next, probe_done) =
        (f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.block(have_key).jump(probe_h);
    f.block(probe_h).bin(BinOp::Lt, cc, probe, 64i64);
    f.block(probe_h).branch(cc, probe_chk, probe_done);
    {
        let mut b = f.block(probe_chk);
        b.bin(BinOp::Add, t, h, probe);
        b.bin(BinOp::And, t, t, SLOTS - 1);
        b.bin(BinOp::Add, addr, t, KEYS);
        b.load(found, addr);
        // found == key -> hit; found == 0 -> empty; else next probe
        b.bin(BinOp::Eq, cc, found, key);
    }
    let (hit, chk_empty, empty) = (f.new_block(), f.new_block(), f.new_block());
    f.block(probe_chk).branch(cc, hit, chk_empty);
    f.block(chk_empty).bin(BinOp::Eq, cc, found, 0i64);
    f.block(chk_empty).branch(cc, empty, probe_next);
    f.block(probe_next).bin(BinOp::Add, probe, probe, 1i64);
    f.block(probe_next).jump(probe_h);

    // Hit: read the value, fold into checksum register x2 (reuse t).
    let (next_txn, chks) = (f.new_block(), f.reg());
    {
        let mut b = f.block(hit);
        b.bin(BinOp::Add, addr, t, VALS);
        b.load(t, addr);
        b.bin(BinOp::Add, hits, hits, 1i64);
        b.bin(BinOp::Xor, chks, chks, t);
        b.jump(next_txn);
    }
    // Empty slot: insert (key, value).
    {
        let mut b = f.block(empty);
        b.bin(BinOp::Add, addr, t, KEYS);
        b.store(addr, key);
        b.bin(BinOp::Add, addr, t, VALS);
        b.bin(BinOp::Mul, t, key, 17i64);
        b.store(addr, t);
        b.bin(BinOp::Add, inserts, inserts, 1i64);
        b.jump(next_txn);
    }
    // Probe limit exhausted: treat as a dropped transaction.
    f.block(probe_done).jump(next_txn);
    {
        let mut b = f.block(next_txn);
        b.bin(BinOp::Add, it, it, 1i64);
        b.jump(mh);
    }

    f.block(mx).out(Operand::Reg(hits));
    f.block(mx).out(Operand::Reg(inserts));
    f.block(mx).out(Operand::Reg(chks));
    f.block(mx).ret(Some(Operand::Reg(hits)));
    let main = f.finish();
    pb.finish(main).expect("vortex-like program is valid")
}

/// Statements per transaction, measured.
pub const STMTS_PER_ITER: u64 = 24;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let txns = (target_stmts / STMTS_PER_ITER).max(1);
    vec![txns as i64, 255_255]
}
