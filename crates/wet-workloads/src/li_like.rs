//! `li-like` — a bytecode interpreter in the spirit of `130.li`.
//!
//! A tiny stack-machine program (compiled into memory at startup) is
//! executed repeatedly by a dispatch loop, and a recursive IR function
//! is invoked periodically — interpreters exhibit extreme path
//! repetition (dispatch loop) plus deep call activity, which is the
//! behaviour that gave `130.li` strong timestamp compression in the
//! paper.

use crate::util::loop_blocks;
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const CODE: i64 = 0; // bytecode region
const STACK: i64 = 128; // operand stack

// Opcodes of the interpreted machine.
const OP_PUSH: i64 = 0; // push immediate (next word)
const OP_ADD: i64 = 1;
const OP_DUP: i64 = 2;
const OP_JNZ: i64 = 3; // decrement TOS; jump to target (next word) if nonzero
const OP_HALT: i64 = 4;

/// Builds the program. Inputs: `[rounds, depth]` — `rounds` executions
/// of the bytecode, and every round calls `sum_rec(depth)`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();

    // Recursive helper: sum_rec(d) = d <= 0 ? 0 : d + sum_rec(d - 1).
    let sum_rec = pb.declare("sum_rec");
    {
        let mut g = pb.define(sum_rec, 1);
        let e = g.entry_block();
        let (base, rec, done) = (g.new_block(), g.new_block(), g.new_block());
        let d = g.param(0);
        let (c, t, r) = (g.reg(), g.reg(), g.reg());
        g.block(e).bin(BinOp::Le, c, d, 0i64);
        g.block(e).branch(c, base, rec);
        g.block(base).ret(Some(Operand::Imm(0)));
        g.block(rec).bin(BinOp::Sub, t, d, 1i64);
        g.block(rec).call(sum_rec, vec![Operand::Reg(t)], Some(r), done);
        g.block(done).bin(BinOp::Add, r, r, d);
        g.block(done).ret(Some(Operand::Reg(r)));
        g.finish();
    }

    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (rounds, depth) = (f.reg(), f.reg());
    f.block(e).input(rounds);
    f.block(e).input(depth);

    // Assemble the bytecode: push 25; loop { dup; add; jnz back } halt.
    // Encoded program: [PUSH, 25, PUSH, 6, DUP, ADD, JNZ, 2, HALT]
    // (operand meanings are interpreted below; the exact program is a
    // counted inner loop of arithmetic.)
    {
        let mut b = f.block(e);
        let prog: [i64; 9] = [OP_PUSH, 40, OP_PUSH, 12, OP_DUP, OP_ADD, OP_JNZ, 4, OP_HALT];
        for (i, w) in prog.iter().enumerate() {
            b.store(CODE + i as i64, *w);
        }
    }

    // Outer rounds loop.
    let (it, c, acc) = (f.reg(), f.reg(), f.reg());
    f.block(e).movi(it, 0);
    f.block(e).movi(acc, 0);
    let (rh, rb, rx) = loop_blocks(&mut f, it, rounds, c);
    f.block(e).jump(rh);

    // One bytecode execution: dispatch loop.
    let (pc, sp, op, t, u, cc) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let dispatch = f.new_block();
    // Vary the interpreted loop's trip count and the arithmetic seed
    // per round so neither the path stream nor the value stream is
    // identical across rounds (real Lisp workloads interleave data).
    f.block(rb).bin(BinOp::Rem, t, it, 23i64);
    f.block(rb).bin(BinOp::Add, t, t, 20i64);
    f.block(rb).store(CODE + 1, t);
    f.block(rb).bin(BinOp::Mul, u, it, 2654435761i64);
    f.block(rb).bin(BinOp::And, u, u, 0xffffi64);
    f.block(rb).store(CODE + 3, u);
    f.block(rb).movi(pc, CODE);
    f.block(rb).mov(sp, Operand::Imm(STACK));
    f.block(rb).jump(dispatch);

    let (d_push, n0, d_add, n1, d_dup, n2, d_jnz, d_halt) = (
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
    );
    // Dispatch tree on op.
    f.block(dispatch).load(op, pc);
    f.block(dispatch).bin(BinOp::Add, pc, pc, 1i64);
    f.block(dispatch).bin(BinOp::Eq, cc, op, OP_PUSH);
    f.block(dispatch).branch(cc, d_push, n0);
    f.block(n0).bin(BinOp::Eq, cc, op, OP_ADD);
    f.block(n0).branch(cc, d_add, n1);
    f.block(n1).bin(BinOp::Eq, cc, op, OP_DUP);
    f.block(n1).branch(cc, d_dup, n2);
    f.block(n2).bin(BinOp::Eq, cc, op, OP_JNZ);
    f.block(n2).branch(cc, d_jnz, d_halt);

    // PUSH imm: stack[sp++] = code[pc++]
    {
        let mut b = f.block(d_push);
        b.load(t, pc);
        b.bin(BinOp::Add, pc, pc, 1i64);
        b.store(sp, t);
        b.bin(BinOp::Add, sp, sp, 1i64);
        b.jump(dispatch);
    }
    // ADD: TOS' = pop + pop, push
    {
        let mut b = f.block(d_add);
        b.bin(BinOp::Sub, sp, sp, 1i64);
        b.load(t, sp);
        b.bin(BinOp::Sub, sp, sp, 1i64);
        b.load(u, sp);
        b.bin(BinOp::Add, t, t, u);
        b.bin(BinOp::And, t, t, 0xffffi64);
        b.store(sp, t);
        b.bin(BinOp::Add, sp, sp, 1i64);
        b.jump(dispatch);
    }
    // DUP
    {
        let mut b = f.block(d_dup);
        b.bin(BinOp::Sub, t, sp, 1i64);
        b.load(u, t);
        b.store(sp, u);
        b.bin(BinOp::Add, sp, sp, 1i64);
        b.jump(dispatch);
    }
    // JNZ target: decrement the value *below* TOS (the loop counter);
    // jump back if nonzero.
    let (taken, fall) = (f.new_block(), f.new_block());
    {
        let mut b = f.block(d_jnz);
        b.bin(BinOp::Sub, t, sp, 2i64);
        b.load(u, t);
        b.bin(BinOp::Sub, u, u, 1i64);
        b.store(t, u);
        b.bin(BinOp::Ne, cc, u, 0i64);
        b.branch(cc, taken, fall);
    }
    {
        let mut b = f.block(taken);
        b.load(t, pc); // target operand
        b.bin(BinOp::Add, pc, t, CODE);
        b.jump(dispatch);
    }
    f.block(fall).bin(BinOp::Add, pc, pc, 1i64);
    f.block(fall).jump(dispatch);

    // HALT: accumulate TOS, call the recursive helper, next round.
    let after_call = f.new_block();
    {
        let mut b = f.block(d_halt);
        b.bin(BinOp::Sub, t, sp, 1i64);
        b.load(u, t);
        b.bin(BinOp::Add, acc, acc, u);
        b.call(sum_rec, vec![Operand::Reg(depth)], Some(t), after_call);
    }
    {
        let mut b = f.block(after_call);
        b.bin(BinOp::Add, acc, acc, t);
        b.bin(BinOp::Add, it, it, 1i64);
        b.jump(rh);
    }

    f.block(rx).out(Operand::Reg(acc));
    f.block(rx).ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    pb.finish(main).expect("li-like program is valid")
}

/// Statements per round (bytecode run + recursion), measured.
pub const STMTS_PER_ITER: u64 = 1900;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let rounds = (target_stmts / STMTS_PER_ITER).max(1);
    vec![rounds as i64, 24]
}
