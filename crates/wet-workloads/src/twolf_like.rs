//! `twolf-like` — simulated-annealing placement in the spirit of
//! `300.twolf`.
//!
//! Cells live at grid positions; each step proposes swapping two random
//! cells, evaluates the wirelength delta against four pseudo-nets per
//! cell, and accepts improving (or occasionally worsening) swaps.
//! Random accept/reject decisions and scattered grid reads give this
//! workload the weakest compression of the nine — matching
//! `300.twolf`'s bottom-row ratio (16.49) in Table 1.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand, UnOp};
use wet_ir::Program;

const CELLS: i64 = 1024;
const POS: i64 = 0; // cell -> position
const NET: i64 = CELLS; // cell -> first connected cell (net partner)

/// Builds the program. Inputs: `[steps, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();

    // |a - b| helper.
    let absdiff = {
        let mut g = pb.function("absdiff", 2);
        let e = g.entry_block();
        let (neg, pos_b) = (g.new_block(), g.new_block());
        let (a, b) = (g.param(0), g.param(1));
        let (d, c) = (g.reg(), g.reg());
        g.block(e).bin(BinOp::Sub, d, a, b);
        g.block(e).bin(BinOp::Lt, c, d, 0i64);
        g.block(e).branch(c, neg, pos_b);
        g.block(neg).un(UnOp::Neg, d, d);
        g.block(neg).ret(Some(Operand::Reg(d)));
        g.block(pos_b).ret(Some(Operand::Reg(d)));
        g.finish()
    };

    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (steps, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(steps);
    f.block(e).input(x);

    // Initial placement: pos[i] = (i * 37) % 4096; net[i] = lcg % CELLS.
    let (t, addr) = (f.reg(), f.reg());
    f.block(e).movi(i, 0);
    f.block(e).movi(n, CELLS);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    {
        let mut b = f.block(ib);
        b.bin(BinOp::Mul, t, i, 37i64);
        b.bin(BinOp::Rem, t, t, 4096i64);
        b.bin(BinOp::Add, addr, i, POS);
        b.store(addr, t);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, t, x, CELLS);
        b.bin(BinOp::Add, addr, i, NET);
        b.store(addr, t);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Annealing loop.
    let (it, accepted, cost, ca, cb, pa, pb_, na, nb, pna, pnb, old, new, cc) = (
        f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(),
        f.reg(), f.reg(), f.reg(),
    );
    f.block(ix).movi(it, 0);
    f.block(ix).movi(accepted, 0);
    f.block(ix).movi(cost, 0);
    let (mh, mb, mx) = loop_blocks(&mut f, it, steps, c);
    f.block(ix).jump(mh);

    let (c1, c2, c3, c4) = (f.new_block(), f.new_block(), f.new_block(), f.new_block());
    {
        let mut b = f.block(mb);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, ca, x, CELLS);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, cb, x, CELLS);
        // Load both positions and both net partners' positions.
        b.bin(BinOp::Add, addr, ca, POS);
        b.load(pa, addr);
        b.bin(BinOp::Add, addr, cb, POS);
        b.load(pb_, addr);
        b.bin(BinOp::Add, addr, ca, NET);
        b.load(na, addr);
        b.bin(BinOp::Add, addr, cb, NET);
        b.load(nb, addr);
        b.bin(BinOp::Add, addr, na, POS);
        b.load(pna, addr);
        b.bin(BinOp::Add, addr, nb, POS);
        b.load(pnb, addr);
        // old = |pa - pna| + |pb - pnb|
        b.call(absdiff, vec![Operand::Reg(pa), Operand::Reg(pna)], Some(old), c1);
    }
    f.block(c1).call(absdiff, vec![Operand::Reg(pb_), Operand::Reg(pnb)], Some(t), c2);
    f.block(c2).bin(BinOp::Add, old, old, t);
    // new = |pb - pna| + |pa - pnb|  (cost if we swap)
    f.block(c2).call(absdiff, vec![Operand::Reg(pb_), Operand::Reg(pna)], Some(new), c3);
    f.block(c3).call(absdiff, vec![Operand::Reg(pa), Operand::Reg(pnb)], Some(t), c4);
    f.block(c4).bin(BinOp::Add, new, new, t);

    // Accept if new < old, or with ~10% probability.
    let (decide, lucky_q, accept, reject, cont) =
        (f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    f.block(c4).jump(decide);
    f.block(decide).bin(BinOp::Lt, cc, new, old);
    f.block(decide).branch(cc, accept, lucky_q);
    {
        let mut b = f.block(lucky_q);
        lcg_step(&mut b, x);
        b.bin(BinOp::Rem, cc, x, 100i64);
        b.bin(BinOp::Lt, cc, cc, 10i64);
        b.branch(cc, accept, reject);
    }
    {
        let mut b = f.block(accept);
        b.bin(BinOp::Add, addr, ca, POS);
        b.store(addr, pb_);
        b.bin(BinOp::Add, addr, cb, POS);
        b.store(addr, pa);
        b.bin(BinOp::Add, accepted, accepted, 1i64);
        b.bin(BinOp::Add, cost, cost, new);
        b.jump(cont);
    }
    f.block(reject).bin(BinOp::Add, cost, cost, old);
    f.block(reject).jump(cont);
    {
        let mut b = f.block(cont);
        b.bin(BinOp::Add, it, it, 1i64);
        b.jump(mh);
    }

    f.block(mx).out(Operand::Reg(accepted));
    f.block(mx).out(Operand::Reg(cost));
    f.block(mx).ret(Some(Operand::Reg(accepted)));
    let main = f.finish();
    pb.finish(main).expect("twolf-like program is valid")
}

/// Statements per annealing step, measured.
pub const STMTS_PER_ITER: u64 = 55;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let steps = (target_stmts / STMTS_PER_ITER).max(1);
    vec![steps as i64, 300_300]
}
