//! `mcf-like` — pointer chasing in the spirit of `181.mcf`.
//!
//! A successor array forms a long pseudo-random cycle; the main loop
//! chases it, loading data-dependent addresses with essentially no
//! spatial locality and accumulating costs. `181.mcf` is the classic
//! memory-bound SPEC benchmark; its WET showed weaker timestamp
//! compression (irregular dependence distances) in the paper.

use crate::util::loop_blocks;
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const NODES: i64 = 16_384;
const NEXT: i64 = 0; // successor array
const COST: i64 = NODES; // cost array

/// Builds the program. Inputs: `[hops, seed]`.
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (hops, seed, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(hops);
    f.block(e).input(seed);

    // next[i] = (i * 7919 + seed) % NODES  (7919 is coprime with 2^14
    // only when odd offsets avoid short cycles; good enough scatter),
    // cost[i] = (i * 31) & 0xff.
    let (t, addr) = (f.reg(), f.reg());
    f.block(e).movi(i, 0);
    f.block(e).movi(n, NODES);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    {
        let mut b = f.block(ib);
        b.bin(BinOp::Mul, t, i, 7919i64);
        b.bin(BinOp::Add, t, t, seed);
        b.bin(BinOp::Rem, t, t, NODES);
        b.bin(BinOp::Add, addr, i, NEXT);
        b.store(addr, t);
        b.bin(BinOp::Mul, t, i, 31i64);
        b.bin(BinOp::And, t, t, 0xffi64);
        b.bin(BinOp::Add, addr, i, COST);
        b.store(addr, t);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }

    // Chase loop.
    let (it, cur, acc, cc) = (f.reg(), f.reg(), f.reg(), f.reg());
    f.block(ix).bin(BinOp::Rem, cur, seed, NODES);
    f.block(ix).movi(it, 0);
    f.block(ix).movi(acc, 0);
    let (mh, mb, mx) = loop_blocks(&mut f, it, hops, c);
    f.block(ix).jump(mh);

    let (update, cont) = (f.new_block(), f.new_block());
    {
        let mut b = f.block(mb);
        b.bin(BinOp::Add, addr, cur, NEXT);
        b.load(cur, addr);
        b.bin(BinOp::Add, addr, cur, COST);
        b.load(t, addr);
        b.bin(BinOp::Add, acc, acc, t);
        // Every 16th hop, write back a reduced cost (stores with poor
        // locality).
        b.bin(BinOp::And, cc, it, 15i64);
        b.bin(BinOp::Eq, cc, cc, 0i64);
        b.branch(cc, update, cont);
    }
    {
        let mut b = f.block(update);
        b.bin(BinOp::And, t, acc, 0xffi64);
        b.store(addr, t);
        // Rewire this node's successor so the chase never settles into
        // a fixed cycle (181.mcf's access stream is aperiodic).
        b.bin(BinOp::Mul, t, cur, 7919i64);
        b.bin(BinOp::Add, t, t, acc);
        b.bin(BinOp::Rem, t, t, NODES);
        b.bin(BinOp::Add, addr, cur, NEXT);
        b.store(addr, t);
        b.jump(cont);
    }
    {
        let mut b = f.block(cont);
        b.bin(BinOp::Add, it, it, 1i64);
        b.jump(mh);
    }

    f.block(mx).out(Operand::Reg(acc));
    f.block(mx).ret(Some(Operand::Reg(acc)));
    let main = f.finish();
    pb.finish(main).expect("mcf-like program is valid")
}

/// Statements per hop, measured.
pub const STMTS_PER_ITER: u64 = 11;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let hops = (target_stmts / STMTS_PER_ITER).max(1);
    vec![hops as i64, 181_181]
}
