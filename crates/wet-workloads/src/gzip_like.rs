//! `gzip-like` — LZ77-style compression in the spirit of `164.gzip`.
//!
//! A synthetic byte buffer with planted repetitions is scanned with a
//! rolling 3-byte hash into a head table; candidate matches are
//! extended by an inner comparison loop, emitting matches or literals.
//! Inner-loop trip counts vary with the data, producing the diverse
//! path mix and address-register traffic that made `164.gzip` one of
//! the harder-to-compress rows of Table 1.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

const BUF_LEN: i64 = 8192;
const BUF: i64 = 0;
const HEADS: i64 = BUF_LEN; // hash-head table, 1024 entries
const OUT: i64 = BUF_LEN + 1024;

/// Builds the program. Inputs: `[passes, seed]` — the buffer is
/// compressed `passes` times (the head table persists, changing match
/// behaviour across passes).
pub fn program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (passes, x, i, n, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(e).input(passes);
    f.block(e).input(x);

    // Fill the buffer with skewed bytes: runs of a small alphabet so
    // matches exist. buf[i] = ((i / 13) * 7 + lcg % 4) % 64.
    let (t, u, addr) = (f.reg(), f.reg(), f.reg());
    f.block(e).movi(i, 0);
    f.block(e).movi(n, BUF_LEN);
    let (ih, ib, ix) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(ih);
    {
        let mut b = f.block(ib);
        lcg_step(&mut b, x);
        b.bin(BinOp::Div, t, i, 7i64);
        b.bin(BinOp::Mul, t, t, 7i64);
        b.bin(BinOp::Rem, u, x, 96i64);
        b.bin(BinOp::Add, t, t, u);
        b.bin(BinOp::Rem, t, t, 192i64);
        b.bin(BinOp::Add, addr, i, BUF);
        b.store(addr, t);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(ih);
    }
    // Clear the head table (-1 = empty).
    let hn = f.reg();
    f.block(ix).movi(i, 0);
    f.block(ix).movi(hn, 1024);
    let (hh, hb, hx) = loop_blocks(&mut f, i, hn, c);
    f.block(ix).jump(hh);
    {
        let mut b = f.block(hb);
        b.bin(BinOp::Add, addr, i, HEADS);
        b.store(addr, -1i64);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(hh);
    }

    // Pass loop around the scan loop.
    let (pass, pos, emitted, cc, h, cand, len, b0, b1) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.block(hx).movi(pass, 0);
    f.block(hx).movi(emitted, 0);
    let (ph, pb2, px) = loop_blocks(&mut f, pass, passes, c);
    f.block(hx).jump(ph);

    let scan_head = f.new_block();
    f.block(pb2).movi(pos, 0);
    f.block(pb2).jump(scan_head);

    // Scan while pos < BUF_LEN - 4.
    let (scan_body, scan_done) = (f.new_block(), f.new_block());
    f.block(scan_head).bin(BinOp::Lt, cc, pos, BUF_LEN - 4);
    f.block(scan_head).branch(cc, scan_body, scan_done);

    {
        let mut b = f.block(scan_body);
        // h = (buf[pos]*33 + buf[pos+1]*7 + buf[pos+2]) % 1024
        b.bin(BinOp::Add, addr, pos, BUF);
        b.load(b0, addr);
        b.bin(BinOp::Add, addr, addr, 1i64);
        b.load(b1, addr);
        b.bin(BinOp::Add, addr, addr, 1i64);
        b.load(t, addr);
        b.bin(BinOp::Mul, h, b0, 33i64);
        b.bin(BinOp::Mul, u, b1, 7i64);
        b.bin(BinOp::Add, h, h, u);
        b.bin(BinOp::Add, h, h, t);
        b.bin(BinOp::Rem, h, h, 1024i64);
        // cand = heads[h]; heads[h] = pos
        b.bin(BinOp::Add, addr, h, HEADS);
        b.load(cand, addr);
        b.store(addr, pos);
    }
    // If cand >= 0 and cand < pos: try to extend a match.
    let (try1, try2, extend, literal, have_match, emit_match, advance) = (
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
        f.new_block(),
    );
    f.block(scan_body).bin(BinOp::Ge, cc, cand, 0i64);
    f.block(scan_body).branch(cc, try1, literal);
    f.block(try1).bin(BinOp::Lt, cc, cand, pos);
    f.block(try1).branch(cc, try2, literal);
    f.block(try2).movi(len, 0);
    f.block(try2).jump(extend);
    // while len < 8 && buf[cand+len] == buf[pos+len] { len++ }
    let (ext_chk, ext_inc) = (f.new_block(), f.new_block());
    f.block(extend).bin(BinOp::Lt, cc, len, 8i64);
    f.block(extend).branch(cc, ext_chk, have_match);
    {
        let mut b = f.block(ext_chk);
        b.bin(BinOp::Add, addr, cand, len);
        b.load(t, addr);
        b.bin(BinOp::Add, addr, pos, len);
        b.load(u, addr);
        b.bin(BinOp::Eq, cc, t, u);
        b.branch(cc, ext_inc, have_match);
    }
    f.block(ext_inc).bin(BinOp::Add, len, len, 1i64);
    f.block(ext_inc).jump(extend);
    // Match of >= 3 is emitted; otherwise literal.
    f.block(have_match).bin(BinOp::Ge, cc, len, 3i64);
    f.block(have_match).branch(cc, emit_match, literal);
    {
        let mut b = f.block(emit_match);
        b.bin(BinOp::Rem, addr, emitted, 512i64);
        b.bin(BinOp::Add, addr, addr, OUT);
        b.bin(BinOp::Sub, t, pos, cand); // distance
        b.store(addr, t);
        b.bin(BinOp::Add, emitted, emitted, 1i64);
        b.bin(BinOp::Add, pos, pos, len);
        b.jump(advance);
    }
    {
        let mut b = f.block(literal);
        b.bin(BinOp::Rem, addr, emitted, 512i64);
        b.bin(BinOp::Add, addr, addr, OUT);
        b.store(addr, b0);
        b.bin(BinOp::Add, emitted, emitted, 1i64);
        b.bin(BinOp::Add, pos, pos, 1i64);
        b.jump(advance);
    }
    f.block(advance).jump(scan_head);

    {
        let mut b = f.block(scan_done);
        b.bin(BinOp::Add, pass, pass, 1i64);
        b.jump(ph);
    }

    f.block(px).out(Operand::Reg(emitted));
    f.block(px).ret(Some(Operand::Reg(emitted)));
    let main = f.finish();
    pb.finish(main).expect("gzip-like program is valid")
}

/// Statements per pass (whole-buffer scan), measured.
pub const STMTS_PER_ITER: u64 = 120_000;

/// Inputs targeting roughly `target_stmts` executed statements.
pub fn inputs_for(target_stmts: u64) -> Vec<i64> {
    let passes = (target_stmts / STMTS_PER_ITER).max(1);
    vec![passes as i64, 164_164]
}
