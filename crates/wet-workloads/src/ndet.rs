//! Nondeterministic workloads — programs whose traces depend on values
//! read from outside the program (`readenv` / `readarg` / `readclock` /
//! `readinput`).
//!
//! The nine Table-1 workloads are closed: same IR inputs, same trace,
//! always. These three are deliberately open — every run consumes
//! environment values, argument vectors, clock samples, and an input
//! stream, and their *control flow* branches on what it read. That makes
//! them the test vehicles for the record/replay engine: recording one
//! run captures its NDET stream, and replaying it must reproduce the
//! trace bit for bit, while a single flipped recorded value visibly
//! diverges.
//!
//! They live in their own enum ([`NdetWorkload`]) rather than
//! [`crate::Kind`]: the paper's nine-row table stays nine rows, and
//! closed-world consumers (the bench harness, compression experiments)
//! never meet a program that fails without a source.
//!
//! This crate depends only on `wet-ir`, so the scripted values a run
//! should see are described as plain data ([`ScriptSpec`]); the CLI and
//! tests turn a spec into a `wet_interp::ScriptedSource`.

use crate::util::{lcg_step, loop_blocks};
use wet_ir::builder::ProgramBuilder;
use wet_ir::stmt::{BinOp, Operand};
use wet_ir::Program;

/// Environment key read by [`env_gate_program`] for the round count.
pub const ENV_ROUNDS: i64 = 1;
/// Environment key read by [`env_gate_program`] for the accept threshold.
pub const ENV_THRESH: i64 = 2;

/// A deterministic recipe for one run of a nondeterministic workload:
/// everything a `ScriptedSource` needs, as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptSpec {
    /// `readenv` table as (key, value) pairs.
    pub env: Vec<(i64, i64)>,
    /// `readarg` vector.
    pub args: Vec<i64>,
    /// `readinput` stream, consumed in order.
    pub inputs: Vec<i64>,
    /// Synthetic clock start.
    pub clock0: i64,
    /// Clock advance per `readclock`.
    pub clock_step: i64,
}

/// The nondeterministic workloads, separate from the nine-row
/// [`crate::Kind`] catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NdetWorkload {
    /// Environment-configured annealing gate: `readenv` picks the round
    /// count and accept threshold, `readclock` stamps each round.
    EnvGate,
    /// Argument-vector hasher: `readarg 0` is the count, args 1..=n are
    /// hash-inserted with linear probing.
    ArgMix,
    /// Input-stream folder: `readarg 0` says how many `readinput`
    /// values to fold into sum/min/max, with periodic clock mixing.
    InputStream,
}

impl NdetWorkload {
    /// All nondeterministic workloads.
    pub fn all() -> [NdetWorkload; 3] {
        [NdetWorkload::EnvGate, NdetWorkload::ArgMix, NdetWorkload::InputStream]
    }

    /// Stable display/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            NdetWorkload::EnvGate => "envgate",
            NdetWorkload::ArgMix => "argmix",
            NdetWorkload::InputStream => "stream",
        }
    }

    /// Parses a [`Self::name`] back; `None` for unknown names.
    pub fn from_name(s: &str) -> Option<NdetWorkload> {
        NdetWorkload::all().into_iter().find(|w| w.name() == s)
    }

    /// Builds the program.
    pub fn program(self) -> Program {
        match self {
            NdetWorkload::EnvGate => env_gate_program(),
            NdetWorkload::ArgMix => arg_mix_program(),
            NdetWorkload::InputStream => input_stream_program(),
        }
    }

    /// A canonical scripted run for this workload, varied by `seed` —
    /// the recipe behind the golden corpus and the replay drills. Every
    /// field is derived from `seed` by a fixed LCG so two calls with
    /// the same seed describe byte-identical runs.
    pub fn script(self, seed: u64) -> ScriptSpec {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let mut next = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((x >> 33) & 0x7fff_ffff) as i64
        };
        match self {
            NdetWorkload::EnvGate => ScriptSpec {
                env: vec![(ENV_ROUNDS, 24 + next() % 40), (ENV_THRESH, next() % 0x4000_0000)],
                args: Vec::new(),
                inputs: Vec::new(),
                clock0: next(),
                clock_step: 1 + next() % 7,
            },
            NdetWorkload::ArgMix => {
                let n = 12 + next() % 20;
                let mut args = vec![n];
                args.extend((0..n).map(|_| next()));
                ScriptSpec { env: Vec::new(), args, inputs: Vec::new(), clock0: 0, clock_step: 1 }
            }
            NdetWorkload::InputStream => {
                let n = 16 + next() % 48;
                ScriptSpec {
                    env: Vec::new(),
                    args: vec![n],
                    inputs: (0..n).map(|_| next() - 0x3fff_ffff).collect(),
                    clock0: next(),
                    clock_step: 1 + next() % 5,
                }
            }
        }
    }
}

/// `envgate` — round count and accept threshold come from the
/// environment, each round is stamped with the clock, and an LCG walk
/// decides accepts against the threshold. Control flow (accept vs
/// reject per round) depends on `ENV_THRESH`, so a mutated recorded
/// value reroutes the trace, not just a value stream.
pub fn env_gate_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (rounds, thresh, x, stamp, i, c) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let (hits, addr, t) = (f.reg(), f.reg(), f.reg());
    {
        let mut b = f.block(e);
        b.read_env(rounds, ENV_ROUNDS);
        b.read_env(thresh, ENV_THRESH);
        b.read_clock(stamp);
        // Seed the walk from the starting clock so the whole trajectory
        // is nondeterministic, then clamp rounds into a sane band.
        b.bin(BinOp::And, x, stamp, 0x7fffffffi64);
        b.bin(BinOp::Rem, rounds, rounds, 256i64);
        b.bin(BinOp::Add, rounds, rounds, 8i64);
        b.movi(hits, 0);
        b.movi(i, 0);
    }
    let (head, body, exit) = loop_blocks(&mut f, i, rounds, c);
    f.block(e).jump(head);
    let (accept, next) = (f.new_block(), f.new_block());
    {
        let mut b = f.block(body);
        lcg_step(&mut b, x);
        b.read_clock(stamp);
        b.bin(BinOp::Xor, x, x, stamp);
        b.bin(BinOp::And, x, x, 0x7fffffffi64);
        b.bin(BinOp::Lt, c, x, thresh);
        b.branch(c, accept, next);
    }
    {
        let mut b = f.block(accept);
        b.bin(BinOp::Rem, addr, hits, 64i64);
        b.store(addr, x);
        b.bin(BinOp::Add, hits, hits, 1i64);
        b.jump(next);
    }
    {
        let mut b = f.block(next);
        b.bin(BinOp::Rem, addr, i, 64i64);
        b.load(t, addr);
        b.bin(BinOp::Add, x, x, t);
        b.bin(BinOp::Add, i, i, 1i64);
        b.jump(head);
    }
    f.block(exit).out(Operand::Reg(hits));
    f.block(exit).out(Operand::Reg(x));
    f.block(exit).ret(Some(Operand::Reg(hits)));
    let main = f.finish();
    pb.finish(main).expect("envgate program is valid")
}

/// `argmix` — `readarg 0` is the argument count; args `1..=n` are
/// hash-inserted into a 64-slot open-addressed table. Probe lengths
/// (and thus the path mix) depend entirely on the argument values.
pub fn arg_mix_program() -> Program {
    const TABLE: i64 = 0; // 64 slots, 0 = empty (values are forced nonzero)
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (n, j, c, v, h, addr, slot, sum) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    {
        let mut b = f.block(e);
        b.read_arg(n, 0i64);
        b.bin(BinOp::Rem, n, n, 48i64);
        b.movi(sum, 0);
        b.movi(j, 1);
        b.bin(BinOp::Add, n, n, 1i64);
    }
    let (head, body, exit) = loop_blocks(&mut f, j, n, c);
    f.block(e).jump(head);
    // Insert v at h = v % 64, probing linearly past occupied slots.
    let (probe, occupied, place) = (f.new_block(), f.new_block(), f.new_block());
    {
        let mut b = f.block(body);
        b.read_arg(v, j);
        b.bin(BinOp::And, v, v, 0x7fffffffi64);
        b.bin(BinOp::Add, v, v, 1i64); // nonzero so 0 means empty
        b.bin(BinOp::Rem, h, v, 64i64);
        b.jump(probe);
    }
    {
        let mut b = f.block(probe);
        b.bin(BinOp::Add, addr, h, TABLE);
        b.load(slot, addr);
        b.bin(BinOp::Eq, c, slot, 0i64);
        b.branch(c, place, occupied);
    }
    {
        let mut b = f.block(occupied);
        b.bin(BinOp::Add, sum, sum, slot); // collision cost feeds the checksum
        b.bin(BinOp::Add, h, h, 1i64);
        b.bin(BinOp::Rem, h, h, 64i64);
        b.jump(probe);
    }
    {
        let mut b = f.block(place);
        b.store(addr, v);
        b.bin(BinOp::Add, sum, sum, h);
        b.bin(BinOp::Add, j, j, 1i64);
        b.jump(head);
    }
    f.block(exit).out(Operand::Reg(sum));
    f.block(exit).ret(Some(Operand::Reg(sum)));
    let main = f.finish();
    pb.finish(main).expect("argmix program is valid")
}

/// `stream` — folds `readarg 0` many `readinput` values into
/// sum/min/max, mixing in a clock sample every fourth element. The
/// min/max branches flip with the data, so a replayed stream must match
/// exactly to reproduce the path sequence.
pub fn input_stream_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main", 0);
    let e = f.entry_block();
    let (n, i, c, v, sum, lo, hi, t, addr) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    {
        let mut b = f.block(e);
        b.read_arg(n, 0i64);
        b.bin(BinOp::Rem, n, n, 256i64);
        b.movi(sum, 0);
        b.movi(lo, i64::MAX);
        b.movi(hi, i64::MIN);
        b.movi(i, 0);
    }
    let (head, body, exit) = loop_blocks(&mut f, i, n, c);
    f.block(e).jump(head);
    let (new_lo, chk_hi, new_hi, tick, step) =
        (f.new_block(), f.new_block(), f.new_block(), f.new_block(), f.new_block());
    {
        let mut b = f.block(body);
        b.read_input(v);
        b.bin(BinOp::Add, sum, sum, v);
        b.bin(BinOp::Rem, addr, i, 32i64);
        b.store(addr, v);
        b.bin(BinOp::Lt, c, v, lo);
        b.branch(c, new_lo, chk_hi);
    }
    f.block(new_lo).bin(BinOp::Add, lo, v, 0i64);
    f.block(new_lo).jump(chk_hi);
    f.block(chk_hi).bin(BinOp::Gt, c, v, hi);
    f.block(chk_hi).branch(c, new_hi, tick);
    f.block(new_hi).bin(BinOp::Add, hi, v, 0i64);
    f.block(new_hi).jump(tick);
    // Every fourth element, fold in a clock sample.
    f.block(tick).bin(BinOp::Rem, t, i, 4i64);
    f.block(tick).bin(BinOp::Eq, c, t, 3i64);
    let stamp_b = f.new_block();
    f.block(tick).branch(c, stamp_b, step);
    {
        let mut b = f.block(stamp_b);
        b.read_clock(t);
        b.bin(BinOp::Xor, sum, sum, t);
        b.jump(step);
    }
    f.block(step).bin(BinOp::Add, i, i, 1i64);
    f.block(step).jump(head);
    f.block(exit).out(Operand::Reg(sum));
    f.block(exit).out(Operand::Reg(lo));
    f.block(exit).out(Operand::Reg(hi));
    f.block(exit).ret(Some(Operand::Reg(sum)));
    let main = f.finish();
    pb.finish(main).expect("stream program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use wet_interp::{Interp, InterpConfig, NullSink, ScriptedSource};
    use wet_ir::ballarus::BallLarus;

    fn source(spec: &ScriptSpec) -> ScriptedSource {
        ScriptedSource::new(
            spec.env.iter().copied().collect::<HashMap<_, _>>(),
            spec.args.clone(),
            spec.inputs.clone(),
            spec.clock0,
            spec.clock_step,
        )
    }

    #[test]
    fn ndet_workloads_run_and_are_script_deterministic() {
        for w in NdetWorkload::all() {
            let p = w.program();
            let bl = BallLarus::new(&p);
            let spec = w.script(7);
            let run = |spec: &ScriptSpec| {
                Interp::new(&p, &bl, InterpConfig::default())
                    .run_with(&[], &mut source(spec), &mut NullSink)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()))
            };
            let a = run(&spec);
            let b = run(&spec);
            assert!(a.stmts_executed > 50, "{} did too little work", w.name());
            assert!(!a.outputs.is_empty(), "{} must produce output", w.name());
            assert_eq!(a.outputs, b.outputs, "{} same script, same run", w.name());
        }
    }

    #[test]
    fn different_seeds_change_behaviour() {
        for w in NdetWorkload::all() {
            let p = w.program();
            let bl = BallLarus::new(&p);
            let out = |seed| {
                Interp::new(&p, &bl, InterpConfig::default())
                    .run_with(&[], &mut source(&w.script(seed)), &mut NullSink)
                    .unwrap()
                    .outputs
            };
            assert_ne!(out(1), out(2), "{} must react to its script", w.name());
        }
    }

    #[test]
    fn no_source_is_a_typed_error() {
        let p = env_gate_program();
        let bl = BallLarus::new(&p);
        let err = Interp::new(&p, &bl, InterpConfig::default())
            .run(&[], &mut NullSink)
            .unwrap_err();
        assert!(matches!(err, wet_interp::InterpError::NdetUnavailable { .. }), "{err}");
    }

    #[test]
    fn names_roundtrip() {
        for w in NdetWorkload::all() {
            assert_eq!(NdetWorkload::from_name(w.name()), Some(w));
        }
        assert_eq!(NdetWorkload::from_name("go-like"), None);
    }

    #[test]
    fn table_catalog_is_still_nine() {
        assert_eq!(crate::Kind::all().len(), 9);
    }
}
