//! Reversible value predictors.
//!
//! Every predictor supports a *compress* operation (encode one value
//! against the predictor state, pushing an entry to a bit sink and
//! updating the state) and an *uncompress* operation that is its exact
//! inverse: popping the entry restores both the value and the predictor
//! state that existed before the matching compress.
//!
//! Reversibility comes from the **evict-swap** update rule the paper's
//! Figure 5 uses: on a miss, the entry stores the *evicted prediction*
//! while the table keeps the actual value, so undoing a miss reads the
//! actual value from the table and puts the evicted prediction back.
//! Consequently entries can only be decoded in reverse order of
//! encoding — which is exactly the order a LIFO [`BitStack`] yields.
//!
//! Four predictor families are implemented, mirroring the paper (§4 and
//! §5 "Selection"): FCM, differential FCM (stride FCM), last-*n* with
//! move-to-front, and last-*n* stride.

use crate::bitbuf::{BitSink, BitStack};

/// Which side of the uncompressed window an operation serves.
///
/// Every predictor keeps separate tables per side (the paper's
/// `FRTB`/`BLTB`). The paper says its last-*n* variant uses "only a
/// single look up table TB"; with the op ordering of Figure 5, however,
/// a shared mutable MTF list is corrupted by interleaved boundary
/// operations (the omitted "details"), so this implementation keeps
/// per-side tables for the last-*n* family too — see DESIGN.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// Forward-compressed-with-right-context entries (left of window).
    Fr,
    /// Backward-compressed-with-left-context entries (right of window).
    Bl,
}

/// A direct-mapped prediction table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    slots: Vec<u64>,
    mask: u64,
}

impl Table {
    /// Creates a zero-initialized table with `1 << bits` slots.
    pub fn new(bits: u32) -> Self {
        let n = 1usize << bits;
        Table { slots: vec![0; n], mask: n as u64 - 1 }
    }

    #[inline]
    fn idx(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    /// Heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * 8
    }

    /// The slot contents (for serialization).
    pub fn raw_slots(&self) -> &[u64] {
        &self.slots
    }

    /// Rebuilds a table from its slots.
    ///
    /// # Errors
    /// Fails unless the slot count is a nonzero power of two.
    pub fn from_raw_slots(slots: Vec<u64>) -> Result<Self, &'static str> {
        if slots.is_empty() || !slots.len().is_power_of_two() {
            return Err("table size must be a power of two");
        }
        let mask = slots.len() as u64 - 1;
        Ok(Table { slots, mask })
    }
}

/// Hashes a nearest-first context slice of `k` values.
#[inline]
fn hash_ctx(ctx: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &v in ctx {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

/// A move-to-front table of the `n` most recent values (or strides).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtfTable {
    vals: Vec<u64>,
    index_bits: u32,
}

impl MtfTable {
    /// Creates a zeroed MTF table with `n` entries (`n` must be a power
    /// of two so hit indices fit in `log2(n)` bits).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "MTF size must be a power of two >= 2");
        MtfTable { vals: vec![0; n], index_bits: n.trailing_zeros() }
    }

    /// Compresses `v`: a hit emits `log2(n)` index bits, a miss emits
    /// `v - evicted` in 64 bits (the paper's Fig. 7 encoding).
    fn compress(&mut self, v: u64, out: &mut impl BitSink) -> bool {
        if let Some(j) = self.vals.iter().position(|&x| x == v) {
            out.push_bits(j as u64, self.index_bits);
            out.push_bit(true);
            // Move-to-front: [.. v ..] -> [v, ..] preserving the rest.
            self.vals[..=j].rotate_right(1);
            true
        } else {
            let evicted = *self.vals.last().expect("non-empty table");
            out.push_bits(v.wrapping_sub(evicted), 64);
            out.push_bit(false);
            // [v0..v_{n-2}, evicted] -> [v, v0..v_{n-2}]
            self.vals.rotate_right(1);
            self.vals[0] = v;
            false
        }
    }

    /// The table contents (for serialization).
    pub fn raw_vals(&self) -> &[u64] {
        &self.vals
    }

    /// Rebuilds an MTF table from its contents.
    ///
    /// # Errors
    /// Fails unless the size is a power of two >= 2.
    pub fn from_raw_vals(vals: Vec<u64>) -> Result<Self, &'static str> {
        if vals.len() < 2 || !vals.len().is_power_of_two() {
            return Err("MTF size must be a power of two >= 2");
        }
        let index_bits = vals.len().trailing_zeros();
        Ok(MtfTable { vals, index_bits })
    }

    /// Exact inverse of [`compress`](Self::compress).
    fn uncompress(&mut self, inp: &mut BitStack) -> u64 {
        if inp.pop_bit() {
            let j = inp.pop_bits(self.index_bits) as usize;
            let v = self.vals[0];
            // Undo move-to-front: [v, ..] -> [.., v at j, ..]
            self.vals[..=j].rotate_left(1);
            v
        } else {
            let diff = inp.pop_bits(64);
            let v = self.vals[0];
            let evicted = v.wrapping_sub(diff);
            self.vals.rotate_left(1);
            let n = self.vals.len();
            self.vals[n - 1] = evicted;
            v
        }
    }

    /// [`uncompress`](Self::uncompress) that reports bit-stack
    /// underflow instead of panicking. On `None` the table and stack
    /// are partially mutated and must be discarded.
    fn try_uncompress(&mut self, inp: &mut BitStack) -> Option<u64> {
        if inp.try_pop_bit()? {
            let j = inp.try_pop_bits(self.index_bits)? as usize;
            let v = self.vals[0];
            self.vals[..=j].rotate_left(1);
            Some(v)
        } else {
            let diff = inp.try_pop_bits(64)?;
            let v = self.vals[0];
            let evicted = v.wrapping_sub(diff);
            self.vals.rotate_left(1);
            let n = self.vals.len();
            self.vals[n - 1] = evicted;
            Some(v)
        }
    }
}

/// The compression method for one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Finite context method with the given context order (1..=3).
    Fcm {
        /// Context order (number of neighbouring values hashed).
        order: u32,
    },
    /// Differential (stride) FCM with the given context order.
    Dfcm {
        /// Context order (number of neighbouring strides hashed).
        order: u32,
    },
    /// Last-*n* with move-to-front; `n` must be a power of two.
    LastN {
        /// Table size.
        n: u32,
    },
    /// Last-*n* over strides relative to the adjacent window value.
    LastNStride {
        /// Table size.
        n: u32,
    },
}

impl Method {
    /// The uncompressed-window size this method requires.
    pub fn window(self) -> usize {
        match self {
            Method::Fcm { order } => order as usize,
            Method::Dfcm { order } => order as usize + 1,
            Method::LastN { .. } => 1,
            Method::LastNStride { .. } => 1,
        }
    }

    /// A short display name (`fcm2`, `dfcm1`, `last8`, `stride4`, …).
    pub fn name(self) -> String {
        match self {
            Method::Fcm { order } => format!("fcm{order}"),
            Method::Dfcm { order } => format!("dfcm{order}"),
            Method::LastN { n } => format!("last{n}"),
            Method::LastNStride { n } => format!("stride{n}"),
        }
    }

    /// Rebuilds a method from its wire encoding (the `(tag, arg)` pair
    /// the serializers write), rejecting parameters outside the ranges
    /// this implementation supports. This is the single chokepoint that
    /// keeps a forged method from requesting an oversized context
    /// window (`ctx` buffers hold 4 values) or a non-power-of-two MTF
    /// table (whose constructor would panic).
    ///
    /// # Errors
    /// Fails on an unknown tag, an FCM/DFCM order outside `1..=3`, or a
    /// last-*n* size that is not a power of two in `2..=65536`.
    pub fn checked(tag: u8, arg: u32) -> Result<Method, &'static str> {
        match tag {
            0 | 1 => {
                if !(1..=3).contains(&arg) {
                    return Err("context order out of range");
                }
                Ok(if tag == 0 { Method::Fcm { order: arg } } else { Method::Dfcm { order: arg } })
            }
            2 | 3 => {
                if !arg.is_power_of_two() || !(2..=65536).contains(&arg) {
                    return Err("last-n size must be a power of two in 2..=65536");
                }
                Ok(if tag == 2 { Method::LastN { n: arg } } else { Method::LastNStride { n: arg } })
            }
            _ => Err("bad method tag"),
        }
    }

    /// The method set tried during selection: FCM, differential FCM,
    /// last-*n*, and last-*n* stride, three context/table sizes each
    /// (paper §5: "For each type we created three versions with
    /// differing context size").
    pub fn default_candidates() -> Vec<Method> {
        vec![
            Method::Fcm { order: 1 },
            Method::Fcm { order: 2 },
            Method::Fcm { order: 3 },
            Method::Dfcm { order: 1 },
            Method::Dfcm { order: 2 },
            Method::Dfcm { order: 3 },
            Method::LastN { n: 4 },
            Method::LastN { n: 8 },
            Method::LastN { n: 16 },
            Method::LastNStride { n: 4 },
            Method::LastNStride { n: 8 },
            Method::LastNStride { n: 16 },
        ]
    }
}

/// Displays as the short method name (`fcm2`, `last8`, …) — the form
/// used for metrics labels and error messages.
impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Displays as the paper's stack name: `FR` or `BL`.
impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Side::Fr => "FR",
            Side::Bl => "BL",
        })
    }
}

/// The mutable predictor state of one compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredState {
    /// FCM with per-side tables.
    Fcm {
        /// Context order.
        order: u32,
        /// Table for FR-side operations.
        fr: Table,
        /// Table for BL-side operations.
        bl: Table,
    },
    /// Differential FCM with per-side stride tables.
    Dfcm {
        /// Context order.
        order: u32,
        /// Table for FR-side operations.
        fr: Table,
        /// Table for BL-side operations.
        bl: Table,
    },
    /// Last-*n* with per-side MTF tables.
    LastN {
        /// Table for FR-side operations.
        fr: MtfTable,
        /// Table for BL-side operations.
        bl: MtfTable,
    },
    /// Last-*n* stride with per-side MTF tables.
    LastNStride {
        /// Table for FR-side operations.
        fr: MtfTable,
        /// Table for BL-side operations.
        bl: MtfTable,
    },
}

impl PredState {
    /// Creates zeroed predictor state for `method`; FCM-family tables
    /// get `1 << table_bits` slots.
    pub fn new(method: Method, table_bits: u32) -> Self {
        match method {
            Method::Fcm { order } => PredState::Fcm { order, fr: Table::new(table_bits), bl: Table::new(table_bits) },
            Method::Dfcm { order } => {
                PredState::Dfcm { order, fr: Table::new(table_bits), bl: Table::new(table_bits) }
            }
            Method::LastN { n } => {
                PredState::LastN { fr: MtfTable::new(n as usize), bl: MtfTable::new(n as usize) }
            }
            Method::LastNStride { n } => {
                PredState::LastNStride { fr: MtfTable::new(n as usize), bl: MtfTable::new(n as usize) }
            }
        }
    }

    /// Compresses `v` given the nearest-first context `ctx` (length >=
    /// the method's window). Returns `true` on a predictor hit.
    pub fn compress(&mut self, side: Side, ctx: &[u64], v: u64, out: &mut impl BitSink) -> bool {
        match self {
            PredState::Fcm { order, fr, bl } => {
                let t = if side == Side::Fr { fr } else { bl };
                let i = t.idx(hash_ctx(&ctx[..*order as usize]));
                if t.slots[i] == v {
                    out.push_bit(true);
                    true
                } else {
                    // Evict-swap: the stream stores the evicted
                    // prediction; the table keeps the actual value.
                    out.push_bits(t.slots[i], 64);
                    out.push_bit(false);
                    t.slots[i] = v;
                    false
                }
            }
            PredState::Dfcm { order, fr, bl } => {
                let t = if side == Side::Fr { fr } else { bl };
                let k = *order as usize;
                let mut strides = [0u64; 4];
                for j in 0..k {
                    strides[j] = ctx[j].wrapping_sub(ctx[j + 1]);
                }
                let i = t.idx(hash_ctx(&strides[..k]));
                let actual_stride = v.wrapping_sub(ctx[0]);
                if t.slots[i] == actual_stride {
                    out.push_bit(true);
                    true
                } else {
                    out.push_bits(t.slots[i], 64);
                    out.push_bit(false);
                    t.slots[i] = actual_stride;
                    false
                }
            }
            PredState::LastN { fr, bl } => {
                let tb = if side == Side::Fr { fr } else { bl };
                tb.compress(v, out)
            }
            PredState::LastNStride { fr, bl } => {
                let tb = if side == Side::Fr { fr } else { bl };
                tb.compress(v.wrapping_sub(ctx[0]), out)
            }
        }
    }

    /// Exact inverse of [`compress`](Self::compress): pops the entry and
    /// returns the value, rolling the predictor state back.
    pub fn uncompress(&mut self, side: Side, ctx: &[u64], inp: &mut BitStack) -> u64 {
        match self {
            PredState::Fcm { order, fr, bl } => {
                let t = if side == Side::Fr { fr } else { bl };
                let i = t.idx(hash_ctx(&ctx[..*order as usize]));
                if inp.pop_bit() {
                    t.slots[i]
                } else {
                    let evicted = inp.pop_bits(64);
                    let v = t.slots[i];
                    t.slots[i] = evicted;
                    v
                }
            }
            PredState::Dfcm { order, fr, bl } => {
                let t = if side == Side::Fr { fr } else { bl };
                let k = *order as usize;
                let mut strides = [0u64; 4];
                for j in 0..k {
                    strides[j] = ctx[j].wrapping_sub(ctx[j + 1]);
                }
                let i = t.idx(hash_ctx(&strides[..k]));
                if inp.pop_bit() {
                    ctx[0].wrapping_add(t.slots[i])
                } else {
                    let evicted = inp.pop_bits(64);
                    let stride = t.slots[i];
                    t.slots[i] = evicted;
                    ctx[0].wrapping_add(stride)
                }
            }
            PredState::LastN { fr, bl } => {
                let tb = if side == Side::Fr { fr } else { bl };
                tb.uncompress(inp)
            }
            PredState::LastNStride { fr, bl } => {
                let tb = if side == Side::Fr { fr } else { bl };
                ctx[0].wrapping_add(tb.uncompress(inp))
            }
        }
    }

    /// [`uncompress`](Self::uncompress) that reports bit-stack
    /// underflow instead of panicking. Used by the checked traversal
    /// path that integrity-verifies deserialized streams. On `None` the
    /// predictor state and stack are partially mutated and must be
    /// discarded.
    pub fn try_uncompress(&mut self, side: Side, ctx: &[u64], inp: &mut BitStack) -> Option<u64> {
        match self {
            PredState::Fcm { order, fr, bl } => {
                let t = if side == Side::Fr { fr } else { bl };
                let i = t.idx(hash_ctx(ctx.get(..*order as usize)?));
                if inp.try_pop_bit()? {
                    Some(t.slots[i])
                } else {
                    let evicted = inp.try_pop_bits(64)?;
                    let v = t.slots[i];
                    t.slots[i] = evicted;
                    Some(v)
                }
            }
            PredState::Dfcm { order, fr, bl } => {
                let t = if side == Side::Fr { fr } else { bl };
                let k = *order as usize;
                if k > 3 || ctx.len() < k + 1 {
                    return None;
                }
                let mut strides = [0u64; 4];
                for j in 0..k {
                    strides[j] = ctx[j].wrapping_sub(ctx[j + 1]);
                }
                let i = t.idx(hash_ctx(&strides[..k]));
                if inp.try_pop_bit()? {
                    Some(ctx[0].wrapping_add(t.slots[i]))
                } else {
                    let evicted = inp.try_pop_bits(64)?;
                    let stride = t.slots[i];
                    t.slots[i] = evicted;
                    Some(ctx[0].wrapping_add(stride))
                }
            }
            PredState::LastN { fr, bl } => {
                let tb = if side == Side::Fr { fr } else { bl };
                tb.try_uncompress(inp)
            }
            PredState::LastNStride { fr, bl } => {
                let tb = if side == Side::Fr { fr } else { bl };
                Some(ctx.first()?.wrapping_add(tb.try_uncompress(inp)?))
            }
        }
    }

    /// Heap bytes used by the predictor state.
    pub fn heap_bytes(&self) -> usize {
        match self {
            PredState::Fcm { fr, bl, .. } | PredState::Dfcm { fr, bl, .. } => fr.heap_bytes() + bl.heap_bytes(),
            PredState::LastN { fr, bl } | PredState::LastNStride { fr, bl } => {
                (fr.vals.capacity() + bl.vals.capacity()) * 8
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitbuf::BitStack;

    fn roundtrip(method: Method, values: &[u64]) {
        // Compress a sequence (each value against a synthetic context of
        // its predecessors) and undo it in reverse, checking both the
        // values and the full predictor state are restored.
        let w = method.window();
        let mut st = PredState::new(method, 6);
        let init = st.clone();
        let mut stack = BitStack::new();
        let mut ctxs: Vec<Vec<u64>> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            // nearest-first context: previous values, zero-padded
            let ctx: Vec<u64> =
                (1..=w).map(|d| if i >= d { values[i - d] } else { 0 }).collect();
            st.compress(Side::Fr, &ctx, v, &mut stack);
            ctxs.push(ctx);
        }
        for (i, &v) in values.iter().enumerate().rev() {
            let got = st.uncompress(Side::Fr, &ctxs[i], &mut stack);
            assert_eq!(got, v, "value {i} mismatch for {}", method.name());
        }
        assert!(stack.is_empty());
        assert_eq!(st, init, "state not rolled back for {}", method.name());
    }

    #[test]
    fn all_methods_invert() {
        let data: Vec<u64> = vec![5, 5, 9, 5, 9, 5, 9, 100, 5, 9, 42, 42, 5, 0, u64::MAX, 7, 7, 7];
        for m in Method::default_candidates() {
            roundtrip(m, &data);
        }
    }

    #[test]
    fn fcm_learns_repeating_pattern() {
        // After one round of [1,2,3] repeated, FCM(1) should hit.
        let mut st = PredState::new(Method::Fcm { order: 1 }, 8);
        let mut sink = BitStack::new();
        let seq = [1u64, 2, 3, 1, 2, 3, 1, 2, 3];
        let mut hits = 0;
        for i in 1..seq.len() {
            let ctx = [seq[i - 1]];
            if st.compress(Side::Fr, &ctx, seq[i], &mut sink) {
                hits += 1;
            }
        }
        assert!(hits >= 5, "expected ctx hits after warmup, got {hits}");
    }

    #[test]
    fn dfcm_predicts_arithmetic_sequence() {
        let mut st = PredState::new(Method::Dfcm { order: 1 }, 8);
        let mut sink = BitStack::new();
        let seq: Vec<u64> = (0..50).map(|i| 1000 + 7 * i).collect();
        let mut hits = 0;
        for i in 2..seq.len() {
            let ctx = [seq[i - 1], seq[i - 2]];
            if st.compress(Side::Fr, &ctx, seq[i], &mut sink) {
                hits += 1;
            }
        }
        assert!(hits >= 46, "stride sequence should be nearly all hits, got {hits}");
    }

    #[test]
    fn lastn_hits_on_small_working_set() {
        let mut st = PredState::new(Method::LastN { n: 4 }, 0);
        let mut sink = BitStack::new();
        let seq = [10u64, 20, 10, 20, 30, 10, 20, 30, 10];
        let mut hits = 0;
        for &v in &seq {
            if st.compress(Side::Fr, &[0], v, &mut sink) {
                hits += 1;
            }
        }
        assert!(hits >= 6, "got {hits}");
    }

    #[test]
    fn mtf_rotation_is_involutive() {
        let mut t = MtfTable::new(4);
        let orig = t.clone();
        let mut s = BitStack::new();
        for v in [1u64, 2, 3, 1, 9, 2, 2, 4, 1] {
            t.compress(v, &mut s);
        }
        for v in [1u64, 2, 3, 1, 9, 2, 2, 4, 1].iter().rev() {
            assert_eq!(t.uncompress(&mut s), *v);
        }
        assert_eq!(t, orig);
    }

    #[test]
    fn fr_and_bl_tables_are_independent_for_fcm() {
        let mut st = PredState::new(Method::Fcm { order: 1 }, 4);
        let mut sink = BitStack::new();
        st.compress(Side::Fr, &[1], 42, &mut sink);
        // A BL op with the same context must not see the FR update.
        let hit = st.compress(Side::Bl, &[1], 42, &mut sink);
        assert!(!hit, "BL table must be independent of FR table");
    }

    #[test]
    fn method_window_sizes() {
        assert_eq!(Method::Fcm { order: 3 }.window(), 3);
        assert_eq!(Method::Dfcm { order: 2 }.window(), 3);
        assert_eq!(Method::LastN { n: 8 }.window(), 1);
        assert_eq!(Method::LastNStride { n: 4 }.window(), 1);
    }
}
