//! Bit-level stacks used to store compressed stream entries.
//!
//! The bidirectional stream keeps two bit stacks: `FR` (values left of
//! the uncompressed window, compressed with right context) and `BL`
//! (values right of the window, compressed with left context). Cursor
//! movement pushes entries onto one stack and pops from the other, so a
//! LIFO bit container is exactly what is needed.
//!
//! Entries are written *payload first, flag last*, so that popping reads
//! the 1-bit hit/miss flag first and then knows how many payload bits to
//! pop.

/// Anything that accepts pushed bits. Implemented by [`BitStack`] (real
/// storage) and [`BitCounter`] (size-only trial runs).
pub trait BitSink {
    /// Pushes a single bit.
    fn push_bit(&mut self, bit: bool);
    /// Pushes the low `width` bits of `value` (LSB pushed first).
    fn push_bits(&mut self, value: u64, width: u32);
}

/// A growable stack of bits with LIFO semantics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitStack {
    words: Vec<u64>,
    len: usize,
}

impl BitStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pops a single bit.
    ///
    /// # Panics
    /// Panics if the stack is empty.
    #[inline]
    pub fn pop_bit(&mut self) -> bool {
        assert!(self.len > 0, "pop from empty BitStack");
        self.len -= 1;
        let (w, b) = (self.len / 64, self.len % 64);
        let bit = (self.words[w] >> b) & 1 == 1;
        // Clear so Eq/Debug stay canonical.
        self.words[w] &= !(1u64 << b);
        if b == 0 {
            self.words.pop();
        }
        bit
    }

    /// Pops `width` bits pushed by a matching
    /// [`push_bits`](BitSink::push_bits) call, reconstructing the value.
    ///
    /// # Panics
    /// Panics if fewer than `width` bits are stored or `width > 64`.
    #[inline]
    pub fn pop_bits(&mut self, width: u32) -> u64 {
        assert!(width <= 64);
        let mut v = 0u64;
        // push_bits pushed LSB first, so the MSB is on top: pop from
        // high bit index down.
        for i in (0..width).rev() {
            if self.pop_bit() {
                v |= 1u64 << i;
            }
        }
        v
    }

    /// [`pop_bit`](Self::pop_bit) that reports underflow instead of
    /// panicking — the building block of the checked traversal path
    /// used on untrusted (deserialized) streams.
    #[inline]
    pub fn try_pop_bit(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        Some(self.pop_bit())
    }

    /// [`pop_bits`](Self::pop_bits) that reports underflow instead of
    /// panicking. On `None` some bits may already have been consumed;
    /// the stack must be discarded.
    #[inline]
    pub fn try_pop_bits(&mut self, width: u32) -> Option<u64> {
        if width > 64 || self.len < width as usize {
            return None;
        }
        Some(self.pop_bits(width))
    }

    /// Heap bytes used by the backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// The backing words and bit length (for serialization).
    pub fn raw_parts(&self) -> (&[u64], usize) {
        (&self.words, self.len)
    }

    /// Rebuilds a stack from its raw parts.
    ///
    /// # Errors
    /// Fails if the word count does not match the bit length or the
    /// unused high bits are not zero (non-canonical form).
    pub fn from_raw_parts(words: Vec<u64>, len: usize) -> Result<Self, &'static str> {
        if words.len() != len.div_ceil(64) {
            return Err("bit length does not match word count");
        }
        if !len.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err("non-canonical bits above the stack top");
                }
            }
        }
        Ok(BitStack { words, len })
    }
}

impl BitSink for BitStack {
    #[inline]
    fn push_bit(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1u64 << b;
        }
        self.len += 1;
    }

    #[inline]
    fn push_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        for i in 0..width {
            self.push_bit((value >> i) & 1 == 1);
        }
    }
}

/// A [`BitSink`] that only counts bits — used for trial compression
/// during method selection.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitCounter {
    bits: u64,
}

impl BitCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bits pushed so far.
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

impl BitSink for BitCounter {
    #[inline]
    fn push_bit(&mut self, _bit: bool) {
        self.bits += 1;
    }

    #[inline]
    fn push_bits(&mut self, _value: u64, width: u32) {
        self.bits += u64::from(width);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_lifo() {
        let mut s = BitStack::new();
        s.push_bit(true);
        s.push_bit(false);
        s.push_bit(true);
        assert_eq!(s.len(), 3);
        assert!(s.pop_bit());
        assert!(!s.pop_bit());
        assert!(s.pop_bit());
        assert!(s.is_empty());
    }

    #[test]
    fn multibit_roundtrip() {
        let mut s = BitStack::new();
        s.push_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        s.push_bits(0b101, 3);
        assert_eq!(s.pop_bits(3), 0b101);
        assert_eq!(s.pop_bits(64), 0xDEAD_BEEF_CAFE_F00D);
        assert!(s.is_empty());
    }

    #[test]
    fn interleaved_entries_pop_in_reverse() {
        // Simulates entry format: payload then flag.
        let mut s = BitStack::new();
        s.push_bits(42, 64);
        s.push_bit(false); // miss entry
        s.push_bit(true); // hit entry
        assert!(s.pop_bit()); // hit
        assert!(!s.pop_bit()); // miss flag
        assert_eq!(s.pop_bits(64), 42);
    }

    #[test]
    fn word_boundary_crossing() {
        let mut s = BitStack::new();
        for i in 0..200u64 {
            s.push_bits(i, 7);
        }
        assert_eq!(s.len(), 1400);
        for i in (0..200u64).rev() {
            assert_eq!(s.pop_bits(7), i & 0x7f);
        }
        assert!(s.is_empty());
        assert!(s.words.is_empty(), "popped words are released");
    }

    #[test]
    #[should_panic(expected = "pop from empty")]
    fn pop_empty_panics() {
        BitStack::new().pop_bit();
    }

    #[test]
    fn counter_counts() {
        let mut c = BitCounter::new();
        c.push_bit(true);
        c.push_bits(7, 9);
        assert_eq!(c.bits(), 10);
    }

    #[test]
    fn canonical_equality_after_pop() {
        let mut a = BitStack::new();
        a.push_bits(0xFFFF, 16);
        let mut b = a.clone();
        b.push_bit(true);
        b.pop_bit();
        assert_eq!(a, b, "popping restores canonical representation");
    }
}
