//! Binary serialization of compressed streams.
//!
//! A [`CompressedStream`] is fully self-contained state — bit stacks,
//! window, predictor tables — so round-tripping it through bytes
//! preserves traversability exactly. Little-endian, length-prefixed,
//! no external dependencies.

use crate::bidi::CompressedStream;
use crate::bitbuf::BitStack;
use crate::predict::{Method, MtfTable, PredState, Table};
use std::io::{self, Read, Write};

/// Writes a `u8`.
pub fn w_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Writes a `u32` (LE).
pub fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a `u64` (LE).
pub fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Writes a length-prefixed `u64` slice.
pub fn w_u64s(w: &mut impl Write, vs: &[u64]) -> io::Result<()> {
    w_u64(w, vs.len() as u64)?;
    for &v in vs {
        w_u64(w, v)?;
    }
    Ok(())
}

/// Reads a `u8`.
pub fn r_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Reads a `u32` (LE).
pub fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a `u64` (LE).
pub fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Upper bound on the elements pre-allocated for any wire-supplied
/// length prefix (64 KiB of `u64`s). Vectors longer than this grow
/// incrementally, so allocation tracks bytes actually present in the
/// input — a forged 8-byte length can never request gigabytes up
/// front.
pub const PREALLOC_CAP: usize = 1 << 13;

/// Reads a length-prefixed `u64` vector. Pre-allocation is capped at
/// [`PREALLOC_CAP`] elements and the vector grows in bounded chunks as
/// data actually arrives, so a forged length prefix costs at most the
/// bytes the reader can really produce (plus one chunk).
pub fn r_u64s(r: &mut impl Read) -> io::Result<Vec<u64>> {
    let n = r_u64(r)? as usize;
    if n > (1 << 34) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "length prefix too large"));
    }
    let mut v = Vec::with_capacity(n.min(PREALLOC_CAP));
    for i in 0..n {
        // Reserve in capped steps rather than trusting `n`; a short
        // read errors out of the loop before the next reservation.
        if i == v.capacity() {
            v.reserve((n - i).min(PREALLOC_CAP));
        }
        v.push(r_u64(r)?);
    }
    Ok(v)
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn w_method(w: &mut impl Write, m: Method) -> io::Result<()> {
    let (tag, arg) = match m {
        Method::Fcm { order } => (0u8, order),
        Method::Dfcm { order } => (1, order),
        Method::LastN { n } => (2, n),
        Method::LastNStride { n } => (3, n),
    };
    w_u8(w, tag)?;
    w_u32(w, arg)
}

fn r_method(r: &mut impl Read) -> io::Result<Method> {
    let tag = r_u8(r)?;
    let arg = r_u32(r)?;
    Method::checked(tag, arg).map_err(corrupt)
}

impl BitStack {
    /// Serializes the stack.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (words, len) = self.raw_parts();
        w_u64(w, len as u64)?;
        w_u64s(w, words)
    }

    /// Deserializes a stack written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    /// Fails on malformed input.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let len = r_u64(r)? as usize;
        let words = r_u64s(r)?;
        BitStack::from_raw_parts(words, len).map_err(corrupt)
    }
}

impl Table {
    fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w_u64s(w, self.raw_slots())
    }

    fn read_from(r: &mut impl Read) -> io::Result<Self> {
        Table::from_raw_slots(r_u64s(r)?).map_err(corrupt)
    }
}

impl MtfTable {
    fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w_u64s(w, self.raw_vals())
    }

    fn read_from(r: &mut impl Read) -> io::Result<Self> {
        MtfTable::from_raw_vals(r_u64s(r)?).map_err(corrupt)
    }
}

impl PredState {
    fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        match self {
            PredState::Fcm { order, fr, bl } => {
                w_u8(w, 0)?;
                w_u32(w, *order)?;
                fr.write_to(w)?;
                bl.write_to(w)
            }
            PredState::Dfcm { order, fr, bl } => {
                w_u8(w, 1)?;
                w_u32(w, *order)?;
                fr.write_to(w)?;
                bl.write_to(w)
            }
            PredState::LastN { fr, bl } => {
                w_u8(w, 2)?;
                fr.write_to(w)?;
                bl.write_to(w)
            }
            PredState::LastNStride { fr, bl } => {
                w_u8(w, 3)?;
                fr.write_to(w)?;
                bl.write_to(w)
            }
        }
    }

    fn read_from(r: &mut impl Read) -> io::Result<Self> {
        Ok(match r_u8(r)? {
            0 => {
                let order = r_u32(r)?;
                PredState::Fcm { order, fr: Table::read_from(r)?, bl: Table::read_from(r)? }
            }
            1 => {
                let order = r_u32(r)?;
                PredState::Dfcm { order, fr: Table::read_from(r)?, bl: Table::read_from(r)? }
            }
            2 => PredState::LastN { fr: MtfTable::read_from(r)?, bl: MtfTable::read_from(r)? },
            3 => PredState::LastNStride { fr: MtfTable::read_from(r)?, bl: MtfTable::read_from(r)? },
            _ => return Err(corrupt("bad predictor tag")),
        })
    }
}

impl CompressedStream {
    /// Serializes the stream (including its cursor position and table
    /// state, so traversal resumes exactly where it left off).
    ///
    /// # Errors
    /// Propagates writer errors.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let p = self.raw_parts();
        w_method(w, p.method)?;
        w_u64(w, p.len as u64)?;
        w_u64(w, p.win_start as i64 as u64)?;
        w_u64s(w, &p.window)?;
        p.fr.write_to(w)?;
        p.bl.write_to(w)?;
        p.pred.write_to(w)?;
        w_u64(w, p.hits)?;
        w_u64(w, p.misses)
    }

    /// Deserializes a stream written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    /// Fails on malformed input.
    pub fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let method = r_method(r)?;
        let len = r_u64(r)? as usize;
        let win_start = r_u64(r)? as i64 as isize;
        let window = r_u64s(r)?;
        let fr = BitStack::read_from(r)?;
        let bl = BitStack::read_from(r)?;
        let pred = PredState::read_from(r)?;
        let hits = r_u64(r)?;
        let misses = r_u64(r)?;
        CompressedStream::from_raw_parts(method, len, win_start, window, fr, bl, pred, hits, misses)
            .map_err(corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamConfig;

    #[test]
    fn stream_roundtrips_through_bytes() {
        let data: Vec<u64> = (0..2000).map(|i| (i * 37) % 101).collect();
        for m in Method::default_candidates() {
            let mut s = CompressedStream::compress(&data, m, &StreamConfig::default());
            // Park the cursor somewhere nontrivial.
            s.get(1234);
            let mut bytes = Vec::new();
            s.write_to(&mut bytes).unwrap();
            let mut back = CompressedStream::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(back.method(), s.method());
            assert_eq!(back.len(), s.len());
            assert_eq!(back.window_start(), s.window_start());
            assert_eq!(back.decompress(), data, "{}", m.name());
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let data: Vec<u64> = (0..100).collect();
        let s = CompressedStream::compress(&data, Method::Fcm { order: 1 }, &StreamConfig::default());
        let mut bytes = Vec::new();
        s.write_to(&mut bytes).unwrap();
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CompressedStream::read_from(&mut &bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn bitstack_roundtrip() {
        let mut s = BitStack::new();
        use crate::bitbuf::BitSink;
        for i in 0..300u64 {
            s.push_bits(i, 9);
        }
        let mut bytes = Vec::new();
        s.write_to(&mut bytes).unwrap();
        let back = BitStack::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, s);
    }
}
