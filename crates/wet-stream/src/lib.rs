//! # wet-stream — bidirectional generic stream compression (paper §4)
//!
//! The second compression tier of the Whole Execution Trace views every
//! remaining label sequence — node timestamps, node values, dependence
//! edge timestamp pairs — as a stream of integers and compresses each
//! with a value-predictor-derived algorithm that remains traversable in
//! **both** directions.
//!
//! Classic predictor-based trace compressors (VPC-style) are
//! unidirectional: the stream can only be decoded front to back. The
//! paper's construction keeps an `n`-value *uncompressed window* inside
//! the stream; values left of the window are compressed against their
//! right context, values right of it against their left context, and an
//! *evict-swap* table-update rule makes every predictor step invertible,
//! so the window slides either way in O(1) per step.
//!
//! * [`CompressedStream`] — the bidirectional container with cursor.
//! * [`Method`] — FCM, differential FCM, last-*n*, last-*n*-stride; the
//!   best method per stream is picked by trial compression
//!   ([`CompressedStream::compress_auto`]).
//! * [`sequitur`] — the Sequitur baseline the paper compares against.
//! * [`unidir`] — a classic unidirectional (VPC-style) compressor that
//!   demonstrates why bidirectionality matters: backward reads restart
//!   decoding from the front.
//!
//! # Example
//!
//! ```
//! use wet_stream::{CompressedStream, StreamConfig};
//!
//! // A timestamp-like stream: strictly increasing with regular strides.
//! let ts: Vec<u64> = (0..10_000u64).map(|i| 5 * i + 3).collect();
//! let mut s = CompressedStream::compress_auto(&ts, &StreamConfig::default());
//! assert_eq!(s.get(1234), 5 * 1234 + 3);
//! // Regular strides compress to far below raw size.
//! assert!(s.compressed_bits() < 64 * 10_000 / 10);
//! ```

pub mod bitbuf;
pub mod sequitur;
pub mod serial;
pub mod unidir;

mod bidi;
mod predict;

pub use bidi::{choose_method, CompressedStream, RawParts, StreamConfig, StreamStats};
pub use predict::{Method, PredState, Side};

/// Convenience: compresses a slice of `i64` values (bit-cast to `u64`).
pub fn compress_i64_auto(values: &[i64], cfg: &StreamConfig) -> CompressedStream {
    let u: Vec<u64> = values.iter().map(|&v| v as u64).collect();
    CompressedStream::compress_auto(&u, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i64_helper_roundtrips() {
        let values: Vec<i64> = vec![-5, 3, -5, 3, i64::MIN, i64::MAX, 0];
        let mut s = compress_i64_auto(&values, &StreamConfig::default());
        let back: Vec<i64> = s.decompress().into_iter().map(|v| v as i64).collect();
        assert_eq!(back, values);
    }
}
