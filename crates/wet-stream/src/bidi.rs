//! Bidirectionally traversable compressed streams (paper §4).
//!
//! A compressed stream of `m` values consists of three parts
//! (`[FR 1..i][U i+1..i+n][BL i+n+1..m]` in the paper's notation):
//!
//! * `FR` — values left of the window, forward-compressed using their
//!   *right* context, stored in a bit stack whose top is the rightmost;
//! * `U` — an `n`-value uncompressed window (`n` = the predictor's
//!   context size), the cursor;
//! * `BL` — values right of the window, backward-compressed using their
//!   *left* context, stored in a bit stack whose top is the leftmost.
//!
//! Moving the window one step right pops/uncompresses the nearest `BL`
//! entry and compresses the value leaving on the left into `FR`; moving
//! left is the exact mirror. Because every predictor operation is
//! reversible (see [`crate::predict`]), `forward ∘ backward` is the
//! identity on the entire structure — stacks, window, and predictor
//! tables — which is the property that makes O(1)-per-step traversal in
//! *either* direction possible.
//!
//! The stream is padded with `n` zeros at each end (paper: "we assume
//! that the stream is extended by n values each at the two ends") so the
//! window always has full context.

use crate::bitbuf::{BitCounter, BitStack};
use crate::predict::{Method, PredState, Side};
use std::collections::VecDeque;

/// Configuration for stream compression.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Upper bound on FCM-family table size (`1 << table_bits_max`
    /// slots); actual tables are sized to the stream length.
    pub table_bits_max: u32,
    /// Number of leading values used to pick a method in
    /// [`CompressedStream::compress_auto`].
    pub trial_len: usize,
    /// Candidate methods for auto selection.
    pub candidates: Vec<Method>,
    /// Worker threads used by callers that compress *many* streams in
    /// bulk (`wet_core`'s tier-2 pass and query engine); `0` means all
    /// available cores. Compressing a single stream is an inherently
    /// sequential predictor pass, so this field does not change the
    /// behavior — or the output bytes — of any function in this crate.
    /// It is an execution knob, not data: it is never serialized, and
    /// bulk callers guarantee byte-identical output across values.
    pub num_threads: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            table_bits_max: 14,
            trial_len: 4096,
            candidates: Method::default_candidates(),
            num_threads: 1,
        }
    }
}

/// Compression statistics of one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Predictor hits during initial compression.
    pub hits: u64,
    /// Predictor misses during initial compression.
    pub misses: u64,
}

/// A compressed stream of `u64` values with a bidirectional cursor.
///
/// All read operations take `&mut self` because reading moves the
/// cursor (the window). Clone the stream to traverse it from several
/// positions concurrently.
///
/// # Example
///
/// ```
/// use wet_stream::{CompressedStream, StreamConfig};
///
/// let values: Vec<u64> = (0..1000).map(|i| i * 3).collect();
/// let mut s = CompressedStream::compress_auto(&values, &StreamConfig::default());
/// assert_eq!(s.get(500), 1500);
/// assert_eq!(s.get(499), 1497); // backward step, same cost
/// assert!(s.compressed_bits() < 64 * 1000 / 8, "stride stream compresses well");
/// ```
#[derive(Debug, Clone)]
pub struct CompressedStream {
    method: Method,
    w: usize,
    len: usize,
    fr: BitStack,
    bl: BitStack,
    /// The uncompressed window; `window[0]` is logical index `win_start`.
    window: VecDeque<u64>,
    /// Logical index of `window[0]`, in `-w ..= len`.
    win_start: isize,
    pred: PredState,
    stats: StreamStats,
}

impl CompressedStream {
    /// Compresses `values` with an explicit method. The cursor starts at
    /// the **right** end (construction is a forward pass; rewinding or
    /// any [`get`](Self::get) repositions it as needed).
    pub fn compress(values: &[u64], method: Method, cfg: &StreamConfig) -> Self {
        let w = method.window();
        let table_bits = table_bits_for(values.len(), cfg.table_bits_max);
        let mut s = CompressedStream {
            method,
            w,
            len: values.len(),
            fr: BitStack::new(),
            bl: BitStack::new(),
            window: std::iter::repeat_n(0u64, w).collect(),
            win_start: -(w as isize),
            pred: PredState::new(method, table_bits),
            stats: StreamStats::default(),
        };
        // Build FR left-to-right. This is the op sequence of a real
        // forward traversal with the BL-uncompress half replaced by raw
        // reads, so every later traversal step revisits exactly the
        // table states established here — which is what keeps methods
        // with a *shared* table (last-n family) decodable.
        while s.win_start < s.len as isize {
            let idx = s.win_start + w as isize;
            let v = if idx >= 0 && (idx as usize) < values.len() { values[idx as usize] } else { 0 };
            s.window.push_back(v);
            let ctx = s.ctx_after_front();
            let leaving = s.window[0];
            let hit = s.pred.compress(Side::Fr, &ctx, leaving, &mut s.fr);
            if hit {
                s.stats.hits += 1;
            } else {
                s.stats.misses += 1;
            }
            s.window.pop_front();
            s.win_start += 1;
        }
        // Per-stream (not per-value) metrics: the name() allocation and
        // registry locking happen once per compressed stream.
        if wet_obs::enabled() {
            let label = method.name();
            wet_obs::counter_add("stream.compressed", &label, 1);
            wet_obs::counter_add("stream.predictor_hits", &label, s.stats.hits);
            wet_obs::counter_add("stream.predictor_misses", &label, s.stats.misses);
            wet_obs::counter_add("stream.values_in", &label, values.len() as u64);
            wet_obs::counter_add("stream.bytes_out", &label, s.compressed_bytes());
        }
        s
    }

    /// Compresses `values`, selecting the best method from
    /// `cfg.candidates` by trial-compressing a prefix (paper §5
    /// "Selection": "After a certain number of instances we pick the
    /// method that performs the best up to that point").
    pub fn compress_auto(values: &[u64], cfg: &StreamConfig) -> Self {
        let method = choose_method(values, cfg);
        Self::compress(values, method, cfg)
    }

    /// Number of values in the stream.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for a zero-length stream.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The compression method in use.
    #[inline]
    pub fn method(&self) -> Method {
        self.method
    }

    /// Initial-compression hit/miss statistics.
    #[inline]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Bits currently held in the FR and BL stacks (the payload of the
    /// compressed representation; excludes the window and predictor
    /// tables, which are bounded per-stream cursor state).
    #[inline]
    pub fn compressed_bits(&self) -> u64 {
        (self.fr.len() + self.bl.len()) as u64
    }

    /// Compressed payload size in bytes, including the window and a
    /// small fixed header, matching how the paper accounts WET sizes.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bits().div_ceil(8) + (self.w as u64) * 8 + 16
    }

    /// Total heap footprint including predictor tables — the in-memory
    /// cost of keeping the stream traversable.
    pub fn heap_bytes(&self) -> u64 {
        (self.fr.heap_bytes() + self.bl.heap_bytes() + self.window.capacity() * 8 + self.pred.heap_bytes()) as u64
            + 64
    }

    /// Logical index of the first window value (may be negative while
    /// the window overlaps the left padding).
    #[inline]
    pub fn window_start(&self) -> isize {
        self.win_start
    }

    /// Moves the window one value to the right. Returns `false` at the
    /// right end.
    pub fn step_forward(&mut self) -> bool {
        if self.win_start >= self.len as isize {
            return false;
        }
        // Uncompress the nearest BL entry using the current window as
        // (left) context, nearest first.
        let ctx = self.ctx_right_edge();
        let v = self.pred.uncompress(Side::Bl, &ctx, &mut self.bl);
        self.window.push_back(v);
        // Compress the value leaving on the left using the *shifted*
        // window as (right) context, nearest first.
        let ctx = self.ctx_after_front();
        let leaving = self.window[0];
        self.pred.compress(Side::Fr, &ctx, leaving, &mut self.fr);
        self.window.pop_front();
        self.win_start += 1;
        true
    }

    /// Moves the window one value to the left. Returns `false` at the
    /// left end.
    pub fn step_backward(&mut self) -> bool {
        if self.win_start <= -(self.w as isize) {
            return false;
        }
        // Uncompress the nearest FR entry using the current window as
        // (right) context, nearest first.
        let ctx = self.ctx_left_edge();
        let v = self.pred.uncompress(Side::Fr, &ctx, &mut self.fr);
        self.window.push_front(v);
        // Compress the value leaving on the right using the shifted
        // window as (left) context, nearest first.
        let ctx = self.ctx_left_of_back();
        let leaving = self.window[self.w];
        self.pred.compress(Side::Bl, &ctx, leaving, &mut self.bl);
        self.window.pop_back();
        self.win_start -= 1;
        true
    }

    /// Reads the value at logical index `i`, moving the cursor as
    /// needed (cost proportional to the distance moved).
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&mut self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let i = i as isize;
        while i >= self.win_start + self.w as isize {
            self.step_forward();
        }
        while i < self.win_start {
            self.step_backward();
        }
        self.window[(i - self.win_start) as usize]
    }

    /// Checked [`step_forward`](Self::step_forward) for untrusted
    /// streams: `Some(true)` on a step, `Some(false)` at the right end,
    /// `None` when the BL stack underflows (corrupt stream — the
    /// claimed length exceeds the stored entries). On `None` the stream
    /// is partially mutated and must be discarded.
    pub fn try_step_forward(&mut self) -> Option<bool> {
        if self.win_start >= self.len as isize {
            return Some(false);
        }
        let ctx = self.ctx_right_edge();
        let v = self.pred.try_uncompress(Side::Bl, &ctx, &mut self.bl)?;
        self.window.push_back(v);
        let ctx = self.ctx_after_front();
        let leaving = self.window[0];
        self.pred.compress(Side::Fr, &ctx, leaving, &mut self.fr);
        self.window.pop_front();
        self.win_start += 1;
        Some(true)
    }

    /// Checked [`step_backward`](Self::step_backward); see
    /// [`try_step_forward`](Self::try_step_forward).
    pub fn try_step_backward(&mut self) -> Option<bool> {
        if self.win_start <= -(self.w as isize) {
            return Some(false);
        }
        let ctx = self.ctx_left_edge();
        let v = self.pred.try_uncompress(Side::Fr, &ctx, &mut self.fr)?;
        self.window.push_front(v);
        let ctx = self.ctx_left_of_back();
        let leaving = self.window[self.w];
        self.pred.compress(Side::Bl, &ctx, leaving, &mut self.bl);
        self.window.pop_back();
        self.win_start -= 1;
        Some(true)
    }

    /// Checked [`get`](Self::get): `None` when `i` is out of bounds or
    /// the stream is corrupt (stack underflow while moving the cursor).
    /// On `None` the stream may be partially mutated; discard it.
    pub fn try_get(&mut self, i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        let i = i as isize;
        while i >= self.win_start + self.w as isize {
            if !self.try_step_forward()? {
                return None;
            }
        }
        while i < self.win_start {
            if !self.try_step_backward()? {
                return None;
            }
        }
        Some(self.window[(i - self.win_start) as usize])
    }

    /// Checked [`decompress`](Self::decompress): the full value
    /// sequence, or `None` if the stream's entries run out before its
    /// claimed length (corrupt input). The output vector grows
    /// incrementally — each decoded value consumes at least one stored
    /// bit, so a forged length cannot force an allocation larger than
    /// the actual payload. On `None` the stream is partially mutated
    /// and must be discarded.
    pub fn try_decompress(&mut self) -> Option<Vec<u64>> {
        let mut out = Vec::new();
        for i in 0..self.len {
            out.push(self.try_get(i)?);
        }
        Some(out)
    }

    /// Verifies the stream decodes over its whole claimed length, on a
    /// clone so the cursor stays put. This is the tier-2 cursor/payload
    /// consistency check `Wet::validate` runs on deserialized traces.
    pub fn check_integrity(&self) -> bool {
        self.clone().try_decompress().is_some()
    }

    /// Reads index `i` without moving the cursor, if it is inside the
    /// window.
    pub fn peek(&self, i: usize) -> Option<u64> {
        let i = i as isize;
        if i >= self.win_start && i < self.win_start + self.w as isize && i < self.len as isize {
            Some(self.window[(i - self.win_start) as usize])
        } else {
            None
        }
    }

    /// Decompresses the entire stream front to back.
    pub fn decompress(&mut self) -> Vec<u64> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Moves the cursor so the window starts at the left end.
    pub fn rewind(&mut self) {
        while self.win_start > -(self.w as isize) {
            self.step_backward();
        }
    }

    /// Borrowed view of all internal state (for serialization).
    pub fn raw_parts(&self) -> RawParts<'_> {
        RawParts {
            method: self.method,
            len: self.len,
            win_start: self.win_start,
            window: self.window.iter().copied().collect(),
            fr: &self.fr,
            bl: &self.bl,
            pred: &self.pred,
            hits: self.stats.hits,
            misses: self.stats.misses,
        }
    }

    /// Rebuilds a stream from its raw parts.
    ///
    /// # Errors
    /// Fails when the parts are structurally inconsistent (window size
    /// vs method, cursor out of range, mismatched predictor).
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        method: Method,
        len: usize,
        win_start: isize,
        window: Vec<u64>,
        fr: BitStack,
        bl: BitStack,
        pred: PredState,
        hits: u64,
        misses: u64,
    ) -> Result<Self, &'static str> {
        let w = method.window();
        if w > 4 {
            // Context buffers are fixed [u64; 4] arrays; a method with a
            // larger window would index past them during traversal.
            return Err("method window too large");
        }
        if window.len() != w {
            return Err("window size does not match method");
        }
        if win_start < -(w as isize) || win_start > len as isize {
            return Err("cursor out of range");
        }
        let matches = matches!(
            (&pred, method),
            (PredState::Fcm { .. }, Method::Fcm { .. })
                | (PredState::Dfcm { .. }, Method::Dfcm { .. })
                | (PredState::LastN { .. }, Method::LastN { .. })
                | (PredState::LastNStride { .. }, Method::LastNStride { .. })
        );
        if !matches {
            return Err("predictor kind does not match method");
        }
        Ok(CompressedStream {
            method,
            w,
            len,
            fr,
            bl,
            window: window.into(),
            win_start,
            pred,
            stats: StreamStats { hits, misses },
        })
    }
}

/// Borrowed internal state of a [`CompressedStream`].
#[derive(Debug)]
pub struct RawParts<'a> {
    /// Compression method.
    pub method: Method,
    /// Value count.
    pub len: usize,
    /// Cursor position.
    pub win_start: isize,
    /// Window contents (front to back; owned — the window is tiny).
    pub window: Vec<u64>,
    /// FR bit stack.
    pub fr: &'a BitStack,
    /// BL bit stack.
    pub bl: &'a BitStack,
    /// Predictor state.
    pub pred: &'a PredState,
    /// Construction hits.
    pub hits: u64,
    /// Construction misses.
    pub misses: u64,
}

// Context-slice helpers. All return nearest-first arrays of exactly `w`
// values (w <= 4 in practice; the buffer is fixed-size). The indexed
// loops mirror the paper's window-offset notation on a deque, where
// iterator chains would obscure the direction.
#[allow(clippy::needless_range_loop)]
impl CompressedStream {
    /// Context for uncompressing the value just right of the window:
    /// window values right-to-left.
    fn ctx_right_edge(&self) -> [u64; 4] {
        let mut c = [0u64; 4];
        for j in 0..self.w {
            c[j] = self.window[self.w - 1 - j];
        }
        c
    }

    /// Context for uncompressing the value just left of the window:
    /// window values left-to-right.
    fn ctx_left_edge(&self) -> [u64; 4] {
        let mut c = [0u64; 4];
        for j in 0..self.w {
            c[j] = self.window[j];
        }
        c
    }

    /// Context for compressing `window[0]` when the deque temporarily
    /// holds `w + 1` values: the values after the front, nearest first.
    fn ctx_after_front(&self) -> [u64; 4] {
        debug_assert_eq!(self.window.len(), self.w + 1);
        let mut c = [0u64; 4];
        for j in 0..self.w {
            c[j] = self.window[1 + j];
        }
        c
    }

    /// Context for compressing `window[w]` (the back) when the deque
    /// temporarily holds `w + 1` values: the values before the back,
    /// nearest first.
    fn ctx_left_of_back(&self) -> [u64; 4] {
        debug_assert_eq!(self.window.len(), self.w + 1);
        let mut c = [0u64; 4];
        for j in 0..self.w {
            c[j] = self.window[self.w - 1 - j];
        }
        c
    }
}

fn table_bits_for(len: usize, max_bits: u32) -> u32 {
    let want = usize::BITS - len.next_power_of_two().leading_zeros() - 1;
    want.clamp(4, max_bits.max(4))
}

/// Trial-compresses a prefix of `values` with every candidate and
/// returns the method with the fewest bits (ties break toward the
/// earlier candidate).
pub fn choose_method(values: &[u64], cfg: &StreamConfig) -> Method {
    let candidates = if cfg.candidates.is_empty() {
        Method::default_candidates()
    } else {
        cfg.candidates.clone()
    };
    let n = values.len().min(cfg.trial_len.max(1));
    let prefix = &values[..n];
    let mut best = candidates[0];
    let mut best_bits = u64::MAX;
    for &m in &candidates {
        let (bits, hits, misses) = trial_bits(prefix, m, table_bits_for(values.len(), cfg.table_bits_max));
        // Trial hit rates cover *every* candidate on the same prefix —
        // the paper's per-variant predictor comparison — where the
        // post-selection counters only see each stream's winner.
        if wet_obs::enabled() {
            let label = m.name();
            wet_obs::counter_add("stream.trial_hits", &label, hits);
            wet_obs::counter_add("stream.trial_misses", &label, misses);
        }
        if bits < best_bits {
            best_bits = bits;
            best = m;
        }
    }
    best
}

/// Counts the bits a method would use on `values` (left-to-right pass;
/// compression ratios are direction-symmetric in expectation), along
/// with the predictor's hit and miss counts.
fn trial_bits(values: &[u64], method: Method, table_bits: u32) -> (u64, u64, u64) {
    let w = method.window();
    let mut st = PredState::new(method, table_bits);
    let mut counter = BitCounter::new();
    let mut ctx = [0u64; 4];
    let mut hits = 0u64;
    for (i, &v) in values.iter().enumerate() {
        for (j, c) in ctx.iter_mut().enumerate().take(w) {
            let d = j + 1;
            *c = if i >= d { values[i - d] } else { 0 };
        }
        hits += u64::from(st.compress(Side::Bl, &ctx, v, &mut counter));
    }
    (counter.bits(), hits, values.len() as u64 - hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StreamConfig {
        StreamConfig::default()
    }

    #[test]
    fn roundtrip_all_methods_small() {
        let values: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4];
        for m in Method::default_candidates() {
            let mut s = CompressedStream::compress(&values, m, &cfg());
            assert_eq!(s.decompress(), values, "method {}", m.name());
        }
    }

    #[test]
    fn roundtrip_empty_and_single() {
        for m in Method::default_candidates() {
            let mut s = CompressedStream::compress(&[], m, &cfg());
            assert!(s.is_empty());
            assert_eq!(s.decompress(), Vec::<u64>::new());
            let mut s = CompressedStream::compress(&[42], m, &cfg());
            assert_eq!(s.decompress(), vec![42]);
            assert_eq!(s.get(0), 42);
        }
    }

    #[test]
    fn backward_traversal_reads_same_values() {
        let values: Vec<u64> = (0..500).map(|i| (i * i) % 97).collect();
        let mut s = CompressedStream::compress_auto(&values, &cfg());
        // Walk to the right end, then read backwards.
        let mut back: Vec<u64> = (0..values.len()).rev().map(|i| s.get(i)).collect();
        back.reverse();
        assert_eq!(back, values);
    }

    #[test]
    fn forward_backward_is_identity() {
        let values: Vec<u64> = (0..200).map(|i| i % 7 * 1000).collect();
        for m in Method::default_candidates() {
            let mut s = CompressedStream::compress(&values, m, &cfg());
            s.rewind();
            for _ in 0..50 {
                s.step_forward();
            }
            let snapshot = s.clone();
            assert!(s.step_forward());
            assert!(s.step_backward());
            assert_eq!(s.fr, snapshot.fr, "{}: FR stack differs", m.name());
            assert_eq!(s.bl, snapshot.bl, "{}: BL stack differs", m.name());
            assert_eq!(s.window, snapshot.window, "{}", m.name());
            assert_eq!(s.pred, snapshot.pred, "{}: predictor state differs", m.name());
        }
    }

    #[test]
    fn random_walk_then_full_read() {
        let values: Vec<u64> = (0..300).map(|i| (i * 31 + 7) % 256).collect();
        let mut s = CompressedStream::compress_auto(&values, &cfg());
        // Deterministic pseudo-random walk.
        let mut x = 12345u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if x & 1 == 0 {
                s.step_forward();
            } else {
                s.step_backward();
            }
        }
        assert_eq!(s.decompress(), values, "stream corrupted by random walk");
    }

    #[test]
    fn constant_stream_compresses_hard() {
        let values = vec![7u64; 10_000];
        let s = CompressedStream::compress_auto(&values, &cfg());
        // ~1 bit per value after warmup.
        assert!(s.compressed_bits() < 16_000, "bits = {}", s.compressed_bits());
        assert!(s.stats().hits > 9_900);
    }

    #[test]
    fn stride_stream_prefers_stride_method() {
        let values: Vec<u64> = (0..5000).map(|i| 1_000_000 + 12 * i).collect();
        let m = choose_method(&values, &cfg());
        assert!(
            matches!(m, Method::Dfcm { .. } | Method::LastNStride { .. }),
            "expected a stride-based method, got {}",
            m.name()
        );
        let s = CompressedStream::compress(&values, m, &cfg());
        assert!(s.compressed_bits() < 10_000, "bits = {}", s.compressed_bits());
    }

    #[test]
    fn repeating_pattern_prefers_context_method() {
        let pat = [10u64, 20, 30, 40, 50, 60, 70];
        let values: Vec<u64> = (0..5000).map(|i| pat[i % pat.len()]).collect();
        let s = CompressedStream::compress_auto(&values, &cfg());
        assert!(s.compressed_bits() < 10_000, "bits = {}", s.compressed_bits());
    }

    #[test]
    fn random_stream_stays_near_raw_size() {
        let mut x = 99u64;
        let values: Vec<u64> = (0..2000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        let s = CompressedStream::compress_auto(&values, &cfg());
        let raw_bits = 64 * 2000;
        assert!(
            s.compressed_bits() <= raw_bits + raw_bits / 32,
            "worst case within ~3% of raw: {} vs {}",
            s.compressed_bits(),
            raw_bits
        );
    }

    #[test]
    fn get_panics_out_of_bounds() {
        let mut s = CompressedStream::compress(&[1, 2, 3], Method::Fcm { order: 1 }, &cfg());
        assert_eq!(s.get(2), 3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.get(3)));
        assert!(r.is_err());
    }

    #[test]
    fn rewind_returns_to_left_end() {
        let values: Vec<u64> = (0..100).collect();
        let mut s = CompressedStream::compress_auto(&values, &cfg());
        s.get(99);
        s.rewind();
        assert_eq!(s.window_start(), -(s.method().window() as isize));
        assert_eq!(s.get(0), 0);
    }

    #[test]
    fn compressed_bytes_accounts_header() {
        let s = CompressedStream::compress(&[1, 2, 3], Method::LastN { n: 4 }, &cfg());
        assert!(s.compressed_bytes() >= 16);
        assert!(s.heap_bytes() >= s.compressed_bytes());
    }
}
