//! Classic **unidirectional** predictor-based compression — the
//! baseline the paper's bidirectional scheme replaces.
//!
//! A VPC-style forward FCM compressor: values are encoded front to
//! back against a zero-initialized table; on a miss the *actual* value
//! is stored and the table updated. Decoding therefore only works
//! front to back. "The problem with using a unidirectional predictor
//! is that while it is easy to traverse the value stream in the
//! direction corresponding to the order in which values were
//! compressed, traversing the stream in the reverse direction is
//! expensive" (§4) — a backward read here must restart decoding from
//! the beginning for every step, which [`UnidirStream::restarts`]
//! makes measurable.

use crate::bitbuf::BitSink;

const CTX: usize = 2;

#[derive(Debug, Clone)]
struct FwdTable {
    slots: Vec<u64>,
    mask: u64,
}

impl FwdTable {
    fn new(bits: u32) -> Self {
        let n = 1usize << bits;
        FwdTable { slots: vec![0; n], mask: n as u64 - 1 }
    }

    #[inline]
    fn idx(&self, ctx: &[u64; CTX]) -> usize {
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for &v in ctx {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01B3);
            h ^= h >> 29;
        }
        (h & self.mask) as usize
    }
}

/// A forward-only compressed stream of `u64` values.
///
/// # Example
///
/// ```
/// use wet_stream::unidir::UnidirStream;
///
/// let data: Vec<u64> = (0..1000).map(|i| i % 5).collect();
/// let mut s = UnidirStream::compress(&data, 10);
/// assert_eq!(s.get(500), 0);
/// assert_eq!(s.get(499), 4); // works, but restarts decoding
/// assert!(s.restarts() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct UnidirStream {
    /// Entry bits in *forward* order (not a stack; indexed by a read
    /// pointer during decoding).
    bits: Vec<bool>,
    len: usize,
    table_bits: u32,
    // Decoder state.
    table: FwdTable,
    ctx: [u64; CTX],
    bit_pos: usize,
    next_index: usize,
    window: u64,
    restarts: u64,
}

/// A simple forward-order bit buffer.
#[derive(Debug, Default)]
struct BitVecSink(Vec<bool>);

impl BitSink for BitVecSink {
    fn push_bit(&mut self, bit: bool) {
        self.0.push(bit);
    }
    fn push_bits(&mut self, value: u64, width: u32) {
        for i in 0..width {
            self.0.push((value >> i) & 1 == 1);
        }
    }
}

impl UnidirStream {
    /// Compresses `values` with a forward FCM of order 2 and
    /// `1 << table_bits` table slots.
    pub fn compress(values: &[u64], table_bits: u32) -> Self {
        let mut table = FwdTable::new(table_bits);
        let mut ctx = [0u64; CTX];
        let mut sink = BitVecSink::default();
        for &v in values {
            let i = table.idx(&ctx);
            if table.slots[i] == v {
                sink.push_bit(true);
            } else {
                sink.push_bit(false);
                sink.push_bits(v, 64);
                table.slots[i] = v;
            }
            ctx = [v, ctx[0]];
        }
        UnidirStream {
            bits: sink.0,
            len: values.len(),
            table_bits,
            table: FwdTable::new(table_bits),
            ctx: [0; CTX],
            bit_pos: 0,
            next_index: 0,
            window: 0,
            restarts: 0,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed payload size in bits.
    pub fn compressed_bits(&self) -> u64 {
        self.bits.len() as u64
    }

    /// Times the decoder had to restart from position 0 because a read
    /// went backward — the cost the bidirectional scheme eliminates.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    fn reset(&mut self) {
        self.table = FwdTable::new(self.table_bits);
        self.ctx = [0; CTX];
        self.bit_pos = 0;
        self.next_index = 0;
    }

    fn decode_next(&mut self) -> u64 {
        let i = self.table.idx(&self.ctx);
        let hit = self.bits[self.bit_pos];
        self.bit_pos += 1;
        let v = if hit {
            self.table.slots[i]
        } else {
            let mut v = 0u64;
            for b in 0..64 {
                if self.bits[self.bit_pos + b] {
                    v |= 1 << b;
                }
            }
            self.bit_pos += 64;
            self.table.slots[i] = v;
            v
        };
        self.ctx = [v, self.ctx[0]];
        self.next_index += 1;
        self.window = v;
        v
    }

    /// Reads the value at index `i`. Forward reads are O(distance);
    /// *backward* reads restart decoding from the beginning.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&mut self, i: usize) -> u64 {
        assert!(i < self.len, "index {i} out of bounds");
        if i + 1 < self.next_index {
            self.restarts += 1;
            self.reset();
        }
        if i + 1 == self.next_index {
            return self.window;
        }
        let mut v = self.window;
        while self.next_index <= i {
            v = self.decode_next();
        }
        v
    }

    /// Decompresses everything front to back (cheap direction).
    pub fn decompress(&mut self) -> Vec<u64> {
        self.reset();
        (0..self.len).map(|_| self.decode_next()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u64> = (0..500).map(|i| (i * i) % 37).collect();
        let mut s = UnidirStream::compress(&data, 8);
        assert_eq!(s.decompress(), data);
    }

    #[test]
    fn forward_reads_are_cheap() {
        let data: Vec<u64> = (0..1000).collect();
        let mut s = UnidirStream::compress(&data, 8);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(s.get(i), v);
        }
        assert_eq!(s.restarts(), 0);
    }

    #[test]
    fn backward_reads_restart() {
        let data: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let mut s = UnidirStream::compress(&data, 8);
        let mut back: Vec<u64> = (0..100).rev().map(|i| s.get(i)).collect();
        back.reverse();
        assert_eq!(back, data);
        assert!(s.restarts() >= 98, "each backward step restarts: {}", s.restarts());
    }

    #[test]
    fn repetitive_data_compresses() {
        let data: Vec<u64> = (0..10_000).map(|i| [3u64, 1, 4][i % 3]).collect();
        let s = UnidirStream::compress(&data, 10);
        assert!(s.compressed_bits() < 20_000, "bits = {}", s.compressed_bits());
    }

    #[test]
    fn empty_stream() {
        let mut s = UnidirStream::compress(&[], 6);
        assert!(s.is_empty());
        assert!(s.decompress().is_empty());
    }
}
