//! Sequitur grammar-based compression (Nevill-Manning & Witten 1997).
//!
//! The paper cites Sequitur \[16\] as the prior bidirectionally
//! traversable compressor (used for whole-program paths \[14\] and address
//! traces \[7\]) but notes it "is nearly not as effective as the
//! unidirectional predictors when compressing value streams". This
//! module implements Sequitur so benches can reproduce that comparison:
//! grammar size vs the predictor-based [`crate::CompressedStream`] on
//! timestamp-like and value-like streams.
//!
//! The implementation enforces both Sequitur invariants:
//! * **digram uniqueness** — no pair of adjacent symbols occurs twice;
//! * **rule utility** — every rule is used at least twice (single-use
//!   rules are inlined and deleted).

use std::collections::{HashMap, HashSet};

/// A grammar symbol: a terminal value or a rule reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// A terminal stream value.
    Term(u64),
    /// A reference to rule `RuleId`.
    Rule(u32),
}

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    sym: Sym,
    prev: u32,
    next: u32,
    /// Rule whose body this node belongs to.
    owner: u32,
    alive: bool,
}

#[derive(Debug, Clone)]
struct Rule {
    /// First/last body node (doubly linked, no sentinel).
    head: u32,
    tail: u32,
    /// Node indices where this rule is used.
    uses: HashSet<u32>,
    alive: bool,
    len: u32,
}

/// An inferred Sequitur grammar.
///
/// # Example
///
/// ```
/// use wet_stream::sequitur::Sequitur;
///
/// let data = [1u64, 2, 3, 1, 2, 3, 1, 2, 3];
/// let mut g = Sequitur::new();
/// for &v in &data {
///     g.push(v);
/// }
/// assert_eq!(g.expand(), data);
/// assert!(g.rule_count() >= 2, "repetition creates rules");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequitur {
    nodes: Vec<Node>,
    rules: Vec<Rule>,
    digrams: HashMap<(Sym, Sym), u32>,
    len: usize,
    /// Re-entrancy depth of `handle_match`; rule utility is only
    /// enforced at depth zero so a freshly created rule is not inlined
    /// between its first and second substitution.
    depth: u32,
}

impl Sequitur {
    /// Creates a grammar with an empty start rule.
    pub fn new() -> Self {
        let mut s = Sequitur::default();
        s.rules.push(Rule { head: NIL, tail: NIL, uses: HashSet::new(), alive: true, len: 0 });
        s
    }

    /// Number of terminals pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before any terminal is pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live rules (including the start rule).
    pub fn rule_count(&self) -> usize {
        self.rules.iter().filter(|r| r.alive).count()
    }

    /// Total number of symbols across all live rule bodies — the
    /// grammar size, the standard Sequitur compression measure.
    pub fn grammar_symbols(&self) -> usize {
        self.rules.iter().filter(|r| r.alive).map(|r| r.len as usize).sum()
    }

    /// Approximate compressed size in bits: each grammar symbol costs
    /// 64 bits of payload plus a terminal/rule tag bit, and each rule
    /// costs a header.
    pub fn compressed_bits(&self) -> u64 {
        self.grammar_symbols() as u64 * 65 + self.rule_count() as u64 * 32
    }

    /// Appends one terminal to the stream.
    pub fn push(&mut self, v: u64) {
        self.len += 1;
        let n = self.new_node(Sym::Term(v), 0);
        self.append_to_rule(0, n);
        let p = self.nodes[n as usize].prev;
        if p != NIL {
            self.check_digram(p);
        }
    }

    /// Expands the grammar back into the full terminal stream.
    pub fn expand(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        self.expand_rule(0, &mut out);
        out
    }

    fn expand_rule(&self, r: u32, out: &mut Vec<u64>) {
        let mut n = self.rules[r as usize].head;
        while n != NIL {
            match self.nodes[n as usize].sym {
                Sym::Term(v) => out.push(v),
                Sym::Rule(rr) => self.expand_rule(rr, out),
            }
            n = self.nodes[n as usize].next;
        }
    }

    // ----- internal machinery -----

    fn new_node(&mut self, sym: Sym, owner: u32) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { sym, prev: NIL, next: NIL, owner, alive: true });
        if let Sym::Rule(r) = sym {
            self.rules[r as usize].uses.insert(idx);
        }
        idx
    }

    fn append_to_rule(&mut self, r: u32, n: u32) {
        let rule = &mut self.rules[r as usize];
        let tail = rule.tail;
        rule.tail = n;
        rule.len += 1;
        if tail == NIL {
            rule.head = n;
        } else {
            self.nodes[tail as usize].next = n;
            self.nodes[n as usize].prev = tail;
        }
        self.nodes[n as usize].owner = r;
    }

    fn digram_at(&self, n: u32) -> Option<(Sym, Sym)> {
        let node = &self.nodes[n as usize];
        if !node.alive || node.next == NIL {
            return None;
        }
        Some((node.sym, self.nodes[node.next as usize].sym))
    }

    /// Removes `n`'s digram from the index if `n` is the registered
    /// occurrence.
    fn forget_digram(&mut self, n: u32) {
        if let Some(d) = self.digram_at(n) {
            if self.digrams.get(&d) == Some(&n) {
                self.digrams.remove(&d);
            }
        }
    }

    /// Checks the digram starting at `n` against the uniqueness
    /// constraint; returns true if a substitution happened.
    fn check_digram(&mut self, n: u32) -> bool {
        let Some(d) = self.digram_at(n) else { return false };
        match self.digrams.get(&d).copied() {
            None => {
                self.digrams.insert(d, n);
                false
            }
            Some(m) if m == n => false,
            Some(m) => {
                if !self.nodes[m as usize].alive || self.digram_at(m) != Some(d) {
                    // Stale index entry; re-register.
                    self.digrams.insert(d, n);
                    return false;
                }
                // Overlapping occurrences (e.g. "aaa") are not replaced.
                if self.nodes[m as usize].next == n || self.nodes[n as usize].next == m {
                    return false;
                }
                self.depth += 1;
                self.handle_match(n, m, d);
                self.depth -= 1;
                if self.depth == 0 {
                    self.enforce_utility();
                }
                true
            }
        }
    }

    fn handle_match(&mut self, n: u32, m: u32, d: (Sym, Sym)) {
        // If m is the complete body of a rule, reuse that rule.
        let owner = self.nodes[m as usize].owner;
        let rule = &self.rules[owner as usize];
        let whole_rule = owner != 0 && rule.head == m && rule.tail == self.nodes[m as usize].next;
        if whole_rule {
            self.substitute(n, owner);
        } else {
            // Create a fresh rule for the digram.
            let r = self.rules.len() as u32;
            self.rules.push(Rule { head: NIL, tail: NIL, uses: HashSet::new(), alive: true, len: 0 });
            let a = self.new_node(d.0, r);
            let b = self.new_node(d.1, r);
            self.append_to_rule(r, a);
            self.append_to_rule(r, b);
            self.digrams.insert(d, a);
            self.substitute(m, r);
            self.substitute(n, r);
        }
    }

    /// Replaces the digram starting at `n` with a single use of rule
    /// `r`, then restores the invariants around the splice point.
    fn substitute(&mut self, n: u32, r: u32) {
        let next = self.nodes[n as usize].next;
        let prev = self.nodes[n as usize].prev;
        let owner = self.nodes[n as usize].owner;
        // Forget boundary digrams that are about to change.
        if prev != NIL {
            self.forget_digram(prev);
        }
        self.forget_digram(n);
        self.forget_digram(next);
        // Delete the two nodes.
        let after = self.nodes[next as usize].next;
        self.delete_node(n);
        self.delete_node(next);
        // Insert the rule reference.
        let u = self.new_node(Sym::Rule(r), owner);
        self.link(owner, prev, u, after);
        self.rules[owner as usize].len = self.rules[owner as usize].len + 1 - 2 + 1 - 1 + 1 - 1;
        // (len bookkeeping: -2 nodes +1 node)
        self.rules[owner as usize].len = self.recount(owner);
        // Re-check boundary digrams; these can cascade.
        if prev != NIL {
            self.check_digram(prev);
        }
        self.check_digram(u);
    }

    fn recount(&self, r: u32) -> u32 {
        let mut c = 0;
        let mut n = self.rules[r as usize].head;
        while n != NIL {
            c += 1;
            n = self.nodes[n as usize].next;
        }
        c
    }

    fn link(&mut self, owner: u32, prev: u32, n: u32, next: u32) {
        self.nodes[n as usize].prev = prev;
        self.nodes[n as usize].next = next;
        self.nodes[n as usize].owner = owner;
        if prev != NIL {
            self.nodes[prev as usize].next = n;
        } else {
            self.rules[owner as usize].head = n;
        }
        if next != NIL {
            self.nodes[next as usize].prev = n;
        } else {
            self.rules[owner as usize].tail = n;
        }
    }

    fn delete_node(&mut self, n: u32) {
        let node = &mut self.nodes[n as usize];
        node.alive = false;
        let sym = node.sym;
        if let Sym::Rule(r) = sym {
            self.rules[r as usize].uses.remove(&n);
        }
    }

    /// Inlines any rule whose use count has dropped to one.
    fn enforce_utility(&mut self) {
        loop {
            let Some((r, site)) = self
                .rules
                .iter()
                .enumerate()
                .skip(1)
                .find(|(_, rule)| rule.alive && rule.uses.len() == 1)
                .map(|(i, rule)| (i as u32, *rule.uses.iter().next().expect("len 1")))
            else {
                return;
            };
            self.inline_rule(r, site);
        }
    }

    /// Splices the body of rule `r` in place of its single use `site`.
    fn inline_rule(&mut self, r: u32, site: u32) {
        let owner = self.nodes[site as usize].owner;
        let prev = self.nodes[site as usize].prev;
        let next = self.nodes[site as usize].next;
        if prev != NIL {
            self.forget_digram(prev);
        }
        self.forget_digram(site);
        self.delete_node(site);

        let head = self.rules[r as usize].head;
        let tail = self.rules[r as usize].tail;
        self.rules[r as usize].alive = false;
        self.rules[r as usize].head = NIL;
        self.rules[r as usize].tail = NIL;

        // Re-own the body nodes and splice them in.
        let mut n = head;
        while n != NIL {
            self.nodes[n as usize].owner = owner;
            n = self.nodes[n as usize].next;
        }
        if prev != NIL {
            self.nodes[prev as usize].next = head;
        } else {
            self.rules[owner as usize].head = head;
        }
        self.nodes[head as usize].prev = prev;
        if next != NIL {
            self.nodes[next as usize].prev = tail;
        } else {
            self.rules[owner as usize].tail = tail;
        }
        self.nodes[tail as usize].next = next;
        self.rules[owner as usize].len = self.recount(owner);

        // Restore digram uniqueness at the splice boundaries. Interior
        // digrams were already unique inside the rule body; register
        // them under their (possibly new) locations lazily via checks.
        if prev != NIL {
            self.check_digram(prev);
        }
        if self.nodes[tail as usize].alive {
            self.check_digram(tail);
        }
    }
}

/// Compresses a whole stream and returns the grammar.
pub fn compress(values: &[u64]) -> Sequitur {
    let mut g = Sequitur::new();
    for &v in values {
        g.push(v);
    }
    wet_obs::counter_add("sequitur.streams", "", 1);
    wet_obs::counter_add("sequitur.rules", "", g.rule_count() as u64);
    wet_obs::counter_add("sequitur.symbols", "", g.grammar_symbols() as u64);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64]) -> Sequitur {
        let g = compress(values);
        assert_eq!(g.expand(), values, "expansion mismatch");
        g
    }

    #[test]
    fn empty_and_short() {
        roundtrip(&[]);
        roundtrip(&[1]);
        roundtrip(&[1, 2]);
        roundtrip(&[1, 1]);
        roundtrip(&[1, 1, 1]);
    }

    #[test]
    fn classic_abcabc() {
        let g = roundtrip(&[1, 2, 3, 1, 2, 3]);
        assert!(g.rule_count() >= 2);
        assert!(g.grammar_symbols() < 6, "grammar {} must beat raw 6", g.grammar_symbols());
    }

    #[test]
    fn nested_repetition() {
        // (ab ab c)^4 builds nested rules.
        let unit = [1u64, 2, 1, 2, 3];
        let data: Vec<u64> = (0..4).flat_map(|_| unit).collect();
        let g = roundtrip(&data);
        assert!(g.grammar_symbols() <= 10, "grammar {} too large", g.grammar_symbols());
    }

    #[test]
    fn overlapping_triples() {
        roundtrip(&[5, 5, 5, 5, 5, 5, 5]);
        roundtrip(&[1, 1, 2, 1, 1, 2, 1, 1]);
    }

    #[test]
    fn utility_keeps_rules_used_twice() {
        let data: Vec<u64> = (0..50).flat_map(|_| [9u64, 8, 7, 6]).collect();
        let g = roundtrip(&data);
        for (i, r) in g.rules.iter().enumerate().skip(1) {
            if r.alive {
                assert!(r.uses.len() >= 2, "rule {i} used {} times", r.uses.len());
            }
        }
    }

    #[test]
    fn highly_repetitive_beats_raw_massively() {
        let data: Vec<u64> = (0..1024).map(|i| (i % 2) as u64).collect();
        let g = roundtrip(&data);
        assert!(g.grammar_symbols() < 64, "grammar {}", g.grammar_symbols());
    }

    #[test]
    fn random_data_expands_correctly() {
        let mut x = 7u64;
        let data: Vec<u64> = (0..500)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 16 // small alphabet to exercise rule machinery
            })
            .collect();
        roundtrip(&data);
    }
}
