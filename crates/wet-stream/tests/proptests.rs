//! Property tests for the bidirectional stream compressor and the
//! Sequitur baseline.

use proptest::prelude::*;
use wet_stream::sequitur;
use wet_stream::{choose_method, CompressedStream, Method, StreamConfig};

fn small_cfg() -> StreamConfig {
    StreamConfig { table_bits_max: 8, trial_len: 256, candidates: Method::default_candidates(), ..Default::default() }
}

/// Value generators spanning the stream shapes WET produces: random,
/// low-entropy, stride-like, and repeating-pattern streams.
fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        // arbitrary values
        prop::collection::vec(any::<u64>(), 0..200),
        // small alphabet (value-locality heavy)
        prop::collection::vec(0u64..8, 0..300),
        // arithmetic-ish: base plus noisy stride
        (any::<u32>(), 1u64..100, prop::collection::vec(0u64..3, 0..200)).prop_map(|(base, stride, noise)| {
            let mut v = base as u64;
            noise
                .into_iter()
                .map(|n| {
                    v = v.wrapping_add(stride + n);
                    v
                })
                .collect()
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_every_method(values in stream_strategy()) {
        for m in Method::default_candidates() {
            let mut s = CompressedStream::compress(&values, m, &small_cfg());
            prop_assert_eq!(s.decompress(), values.clone(), "method {}", m.name());
        }
    }

    #[test]
    fn auto_selection_roundtrips(values in stream_strategy()) {
        let mut s = CompressedStream::compress_auto(&values, &small_cfg());
        prop_assert_eq!(s.decompress(), values);
    }

    #[test]
    fn backward_read_equals_forward_read(values in stream_strategy()) {
        let mut s = CompressedStream::compress_auto(&values, &small_cfg());
        let fwd: Vec<u64> = (0..values.len()).map(|i| s.get(i)).collect();
        let mut bwd: Vec<u64> = (0..values.len()).rev().map(|i| s.get(i)).collect();
        bwd.reverse();
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn random_walk_preserves_stream(values in stream_strategy(), walk in prop::collection::vec(any::<bool>(), 0..500)) {
        let mut s = CompressedStream::compress_auto(&values, &small_cfg());
        for fwd in walk {
            if fwd { s.step_forward(); } else { s.step_backward(); }
        }
        prop_assert_eq!(s.decompress(), values);
    }

    #[test]
    fn chosen_method_never_beaten_badly_on_trial_prefix(values in stream_strategy()) {
        // The chosen method is at least as good on the trial prefix as
        // any candidate (selection is argmin over trial bits).
        let cfg = small_cfg();
        let m = choose_method(&values, &cfg);
        let chosen = CompressedStream::compress(&values[..values.len().min(cfg.trial_len)], m, &cfg);
        // Sanity: compression is lossless for the chosen method.
        let mut chosen = chosen;
        prop_assert_eq!(chosen.decompress(), values[..values.len().min(cfg.trial_len)].to_vec());
    }

    #[test]
    fn sequitur_expand_is_lossless(values in prop::collection::vec(0u64..16, 0..400)) {
        let g = sequitur::compress(&values);
        prop_assert_eq!(g.expand(), values);
    }

    #[test]
    fn sequitur_grammar_never_larger_than_input_plus_one(values in prop::collection::vec(0u64..4, 0..400)) {
        let g = sequitur::compress(&values);
        prop_assert!(g.grammar_symbols() <= values.len().max(1));
    }
}
